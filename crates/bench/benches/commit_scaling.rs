//! Experiment **A7** — commit throughput scaling across threads.
//!
//! The sharded commit pipeline removes the global commit mutex: commits
//! to disjoint tables should scale with the thread count, while commits
//! contending on one table still serialize on that table's write lock.
//! This bench measures both shapes at `DurabilityLevel::None` (so the
//! disk does not flatten the comparison) for 1/2/4/8 threads:
//!
//! * **disjoint** — one table per thread, each thread updates its own
//!   row: the pipeline's shared mode, no common locks past the
//!   sequencer's short critical section;
//! * **contended** — one shared table, each thread updates its own row
//!   in it: every commit takes the same table write lock, the expected
//!   non-scaling control.
//!
//! Reported per (shape, threads): total txns/s, per-thread txns/s, and
//! the engine's own `commit_wait_ns` (time spent waiting to enter the
//! pipeline) and `watermark_lag_max` counters.
//!
//! A second phase (experiment **A11**) re-runs the disjoint shape at
//! `DurabilityLevel::Fsync` with group commit, once per WAL shard
//! count in {1, 4}: with one log file every commit funnels through a
//! single fsync queue; with four, disjoint tables route to different
//! shard files whose flush leaders fsync in parallel. Reported per
//! shard count: txns/s, the summed `flush_wait_ns` committers spent
//! blocked on durability, the high-water mark of concurrent flush
//! leaders (must exceed 1 only when sharded), and per-shard fsync
//! counts. Not a criterion bench (thread orchestration and fresh
//! databases per point), so a plain `main`:
//!
//! ```text
//! cargo bench -p tendax-bench --bench commit_scaling
//! ```
//!
//! Pass `--test` for a quick smoke run and `--json <path>` to append one
//! JSON summary line (consumed by `scripts/bench_commit.sh`).

use std::io::Write as _;
use std::path::PathBuf;
use std::sync::{Arc, Barrier};
use std::time::Instant;

use tendax_storage::{
    DataType, Database, DurabilityLevel, Options, Row, RowId, TableDef, TableId, Value,
};

const THREAD_POINTS: [usize; 4] = [1, 2, 4, 8];

struct Config {
    commits_per_thread: u64,
    quick: bool,
    json_path: Option<String>,
}

fn parse_args() -> Config {
    let mut quick = false;
    let mut json_path = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--test" => quick = true,
            "--json" => json_path = args.next(),
            _ => {} // --bench, filters, ... accepted and ignored
        }
    }
    Config {
        commits_per_thread: if quick { 500 } else { 5_000 },
        quick,
        json_path,
    }
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tendax-bench-commit-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join(name);
    let _ = std::fs::remove_file(&p);
    p
}

#[derive(Clone, Copy, PartialEq)]
enum Shape {
    Disjoint,
    Contended,
}

impl Shape {
    fn label(self) -> &'static str {
        match self {
            Shape::Disjoint => "disjoint",
            Shape::Contended => "contended",
        }
    }
}

struct Point {
    shape: Shape,
    threads: usize,
    txns_per_s: f64,
    commit_wait_ms: f64,
    watermark_lag_max: u64,
}

fn def(name: &str) -> TableDef {
    TableDef::new(name).column("seq", DataType::Int)
}

/// One measured point: open a fresh database at `DurabilityLevel::None`,
/// lay out the tables/rows for the shape, then have every thread commit
/// `commits` single-row updates as fast as it can.
fn run_point(shape: Shape, threads: usize, commits: u64) -> Point {
    let path = tmp(&format!("{}-{threads}.wal", shape.label()));
    let opts = Options {
        durability: DurabilityLevel::None,
        ..Options::default()
    };
    let db = Database::open(&path, opts).expect("open");

    // (table, row) each thread hammers.
    let targets: Vec<(TableId, RowId)> = match shape {
        Shape::Disjoint => (0..threads)
            .map(|k| {
                let t = db.create_table(def(&format!("t{k}"))).expect("ddl");
                let mut txn = db.begin();
                let rid = txn.insert(t, Row::new(vec![Value::Int(0)])).expect("seed");
                txn.commit().expect("seed commit");
                (t, rid)
            })
            .collect(),
        Shape::Contended => {
            let t = db.create_table(def("shared")).expect("ddl");
            let mut txn = db.begin();
            let rids: Vec<RowId> = (0..threads)
                .map(|_| txn.insert(t, Row::new(vec![Value::Int(0)])).expect("seed"))
                .collect();
            txn.commit().expect("seed commit");
            rids.into_iter().map(|rid| (t, rid)).collect()
        }
    };

    let wait_before = db.stats().commit_wait_ns;
    let start = Arc::new(Barrier::new(threads + 1));
    let handles: Vec<_> = targets
        .into_iter()
        .map(|(t, rid)| {
            let db = db.clone();
            let start = start.clone();
            std::thread::spawn(move || {
                start.wait();
                for i in 1..=commits {
                    let mut txn = db.begin();
                    txn.set(t, rid, &[("seq", Value::Int(i as i64))])
                        .expect("update");
                    txn.commit().expect("commit");
                }
            })
        })
        .collect();
    start.wait();
    let t0 = Instant::now();
    for h in handles {
        h.join().unwrap();
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let stats = db.stats();
    Point {
        shape,
        threads,
        txns_per_s: (threads as u64 * commits) as f64 / elapsed,
        commit_wait_ms: (stats.commit_wait_ns - wait_before) as f64 / 1e6,
        watermark_lag_max: stats.watermark_lag_max,
    }
}

/// One A11 point: the disjoint shape at `Fsync` + group commit under
/// `shards` WAL shard files.
struct WalPoint {
    shards: usize,
    threads: usize,
    txns_per_s: f64,
    /// Summed time committers spent blocked in `wait_durable`.
    flush_wait_ms: f64,
    /// Peak flush leaders concurrently in flight.
    max_leaders: u64,
    batches: u64,
    /// Per-shard fsync counts (index = shard number).
    fsyncs: Vec<u64>,
}

fn run_wal_point(shards: usize, threads: usize, commits: u64) -> WalPoint {
    let path = tmp(&format!("wal-{shards}-{threads}.wal"));
    let opts = Options {
        durability: DurabilityLevel::Fsync,
        group_commit: true,
        wal_shards: shards,
        ..Options::default()
    };
    let db = Database::open(&path, opts).expect("open");

    let targets: Vec<(TableId, RowId)> = (0..threads)
        .map(|k| {
            let t = db.create_table(def(&format!("t{k}"))).expect("ddl");
            let mut txn = db.begin();
            let rid = txn.insert(t, Row::new(vec![Value::Int(0)])).expect("seed");
            txn.commit().expect("seed commit");
            (t, rid)
        })
        .collect();

    let wait_before: u64 = db.wal_shard_stats().iter().map(|s| s.flush_wait_ns).sum();
    let start = Arc::new(Barrier::new(threads + 1));
    let handles: Vec<_> = targets
        .into_iter()
        .map(|(t, rid)| {
            let db = db.clone();
            let start = start.clone();
            std::thread::spawn(move || {
                start.wait();
                for i in 1..=commits {
                    let mut txn = db.begin();
                    txn.set(t, rid, &[("seq", Value::Int(i as i64))])
                        .expect("update");
                    txn.commit().expect("commit");
                }
            })
        })
        .collect();
    start.wait();
    let t0 = Instant::now();
    for h in handles {
        h.join().unwrap();
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let shard_stats = db.wal_shard_stats();
    WalPoint {
        shards,
        threads,
        txns_per_s: (threads as u64 * commits) as f64 / elapsed,
        flush_wait_ms: (shard_stats.iter().map(|s| s.flush_wait_ns).sum::<u64>() - wait_before)
            as f64
            / 1e6,
        max_leaders: db.wal_max_concurrent_flush_leaders(),
        batches: shard_stats.iter().map(|s| s.batches_flushed).sum(),
        fsyncs: shard_stats.iter().map(|s| s.fsyncs).collect(),
    }
}

fn main() {
    let cfg = parse_args();

    let mut points = Vec::new();
    for shape in [Shape::Disjoint, Shape::Contended] {
        for &threads in &THREAD_POINTS {
            points.push(run_point(shape, threads, cfg.commits_per_thread));
        }
    }

    println!(
        "{:<10} {:>7} {:>12} {:>10} {:>14} {:>8}",
        "shape", "threads", "txns/s", "scale", "commit wait ms", "lag max"
    );
    for p in &points {
        let base = points
            .iter()
            .find(|q| q.shape == p.shape && q.threads == 1)
            .map(|q| q.txns_per_s)
            .unwrap_or(p.txns_per_s);
        println!(
            "{:<10} {:>7} {:>12.0} {:>9.2}x {:>14.1} {:>8}",
            p.shape.label(),
            p.threads,
            p.txns_per_s,
            p.txns_per_s / base,
            p.commit_wait_ms,
            p.watermark_lag_max
        );
    }

    // A11: durable disjoint commits, single-file vs sharded WAL. Eight
    // writers over four shards: ~2 tables per shard, so every shard's
    // leader has work and the concurrent-leader high-water mark can
    // reach the shard count.
    let wal_threads = 8;
    let wal_commits = if cfg.quick { 40 } else { 300 };
    let wal_points: Vec<WalPoint> = [1usize, 4]
        .iter()
        .map(|&s| run_wal_point(s, wal_threads, wal_commits))
        .collect();

    println!();
    println!(
        "{:<10} {:>7} {:>12} {:>15} {:>12} {:>20}",
        "wal shards", "threads", "txns/s", "flush wait ms", "max leaders", "fsyncs per shard"
    );
    for p in &wal_points {
        println!(
            "{:<10} {:>7} {:>12.0} {:>15.1} {:>12} {:>20}",
            p.shards,
            p.threads,
            p.txns_per_s,
            p.flush_wait_ms,
            p.max_leaders,
            format!("{:?}", p.fsyncs)
        );
    }

    if let Some(path) = cfg.json_path {
        let mut fields: Vec<String> = vec![
            format!("\"commits_per_thread\":{}", cfg.commits_per_thread),
            format!("\"quick\":{}", cfg.quick),
            format!(
                "\"cores\":{}",
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            ),
        ];
        for p in &points {
            let key = format!("{}_{}", p.shape.label(), p.threads);
            fields.push(format!("\"{key}_txns_per_s\":{:.0}", p.txns_per_s));
            fields.push(format!("\"{key}_commit_wait_ms\":{:.1}", p.commit_wait_ms));
            fields.push(format!(
                "\"{key}_watermark_lag_max\":{}",
                p.watermark_lag_max
            ));
        }
        fields.push(format!("\"wal_threads\":{wal_threads}"));
        fields.push(format!("\"wal_commits_per_thread\":{wal_commits}"));
        for p in &wal_points {
            let key = format!("wal{}", p.shards);
            fields.push(format!("\"{key}_txns_per_s\":{:.0}", p.txns_per_s));
            fields.push(format!("\"{key}_flush_wait_ms\":{:.1}", p.flush_wait_ms));
            fields.push(format!("\"{key}_max_leaders\":{}", p.max_leaders));
            fields.push(format!("\"{key}_batches\":{}", p.batches));
            fields.push(format!(
                "\"{key}_fsyncs_total\":{}",
                p.fsyncs.iter().sum::<u64>()
            ));
            for (k, n) in p.fsyncs.iter().enumerate() {
                fields.push(format!("\"{key}_fsyncs_shard{k}\":{n}"));
            }
        }
        let line = format!("{{{}}}\n", fields.join(","));
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .expect("open json output");
        f.write_all(line.as_bytes()).expect("write json");
        println!("appended summary to {path}");
    }
}
