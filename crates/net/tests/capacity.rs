//! Regression tests for the server's connection bound and the pooled
//! event-forwarder.
//!
//! The `max_connections` limit exists because the accept path used to
//! spawn the full per-connection thread set for every socket that
//! showed up: an accept flood could exhaust the process. Excess clients
//! must now be turned away with a typed goodbye frame before any
//! threads or sessions are created for them.

use std::time::{Duration, Instant};

use tendax_collab::CollabServer;
use tendax_net::{codes, ForwarderMode, NetClient, NetConfig, NetError, NetServer};
use tendax_text::TextDb;

const WAIT: Duration = Duration::from_secs(30);

fn serve(users: &[&str], docs: &[&str], config: NetConfig) -> (NetServer, CollabServer) {
    let tdb = TextDb::in_memory();
    let mut creator = None;
    for u in users {
        let id = tdb.create_user(u).unwrap();
        creator.get_or_insert(id);
    }
    for d in docs {
        tdb.create_document(d, creator.expect("at least one user"))
            .unwrap();
    }
    let collab = CollabServer::new(tdb);
    let server = NetServer::bind("127.0.0.1:0", collab.clone(), config).unwrap();
    (server, collab)
}

/// Limit 2, 3 clients: the third is rejected with `codes::CAPACITY`,
/// and a slot freed by a disconnect becomes usable again.
#[test]
fn third_client_rejected_at_limit_two() {
    let config = NetConfig {
        max_connections: 2,
        ..NetConfig::default()
    };
    let (server, _collab) = serve(&["alice", "bob", "carol"], &["doc"], config);
    let addr = server.local_addr();

    let a = NetClient::connect(addr, "alice").unwrap();
    let b = NetClient::connect(addr, "bob").unwrap();

    match NetClient::connect(addr, "carol") {
        Err(NetError::Remote { code, message }) => {
            assert_eq!(code, codes::CAPACITY, "got {message:?}");
            assert!(message.contains("capacity"), "got {message:?}");
        }
        Ok(_) => panic!("third client must be rejected at limit 2"),
        Err(other) => panic!("expected typed capacity error, got {other:?}"),
    }
    assert_eq!(server.stats().capacity_rejects, 1);

    // Both admitted connections still work.
    a.ping().unwrap();
    b.ping().unwrap();

    // Freeing a slot re-admits new clients (the server reaps the closed
    // connection within a read tick; retry until it does).
    drop(a);
    let deadline = Instant::now() + WAIT;
    let c = loop {
        match NetClient::connect(addr, "carol") {
            Ok(c) => break c,
            Err(NetError::Remote { code, .. }) if code == codes::CAPACITY => {
                assert!(Instant::now() < deadline, "slot never freed");
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(other) => panic!("unexpected error while waiting for slot: {other:?}"),
        }
    };
    c.ping().unwrap();
}

/// A rejected client costs the server no session state: rejects do not
/// disturb established subscriptions or the event stream.
#[test]
fn rejects_do_not_disturb_established_clients() {
    let config = NetConfig {
        max_connections: 1,
        ..NetConfig::default()
    };
    let (server, _collab) = serve(&["alice", "bob"], &["doc"], config);
    let addr = server.local_addr();

    let a = NetClient::connect(addr, "alice").unwrap();
    let doc = a.subscribe("doc").unwrap();
    for _ in 0..5 {
        assert!(matches!(
            NetClient::connect(addr, "bob"),
            Err(NetError::Remote { code, .. }) if code == codes::CAPACITY
        ));
    }
    let (_, ts) = a.insert(doc, 0, "still here").unwrap();
    assert!(a.wait_synced(doc, ts, WAIT));
    assert_eq!(a.text(doc).unwrap(), "still here");
    assert_eq!(server.stats().capacity_rejects, 5);
}

/// Both forwarder modes deliver the same convergence guarantee; the
/// pooled mode does it with a fixed thread count instead of one pump
/// thread per subscription.
#[test]
fn pooled_and_per_subscription_forwarders_converge() {
    for mode in [ForwarderMode::Pooled(2), ForwarderMode::PerSubscription] {
        let config = NetConfig {
            forwarder: mode,
            ..NetConfig::default()
        };
        let (server, _collab) = serve(&["alice", "bob"], &["left", "right"], config);
        let addr = server.local_addr();

        let a = NetClient::connect(addr, "alice").unwrap();
        let b = NetClient::connect(addr, "bob").unwrap();
        let left = a.subscribe("left").unwrap();
        let right = a.subscribe("right").unwrap();
        assert_eq!(b.subscribe("left").unwrap(), left);
        assert_eq!(b.subscribe("right").unwrap(), right);

        let (_, t1) = a.insert(left, 0, "hello").unwrap();
        let (_, t2) = a.insert(right, 0, "world").unwrap();
        assert!(b.wait_synced(left, t1, WAIT), "mode {mode:?}");
        assert!(b.wait_synced(right, t2, WAIT), "mode {mode:?}");
        assert_eq!(b.text(left).unwrap(), "hello");
        assert_eq!(b.text(right).unwrap(), "world");

        let stats = server.stats();
        match mode {
            // 4 subscriptions, but only the fixed worker set exists.
            ForwarderMode::Pooled(n) => assert_eq!(stats.forwarder_threads, n as u64),
            // One dedicated pump per subscription.
            ForwarderMode::PerSubscription => assert_eq!(stats.forwarder_threads, 4),
        }
        assert!(stats.events_forwarded >= 2, "mode {mode:?}: {stats:?}");
    }
}

/// The pooled slow-consumer path: a client that stops reading is cut
/// with `SLOW_CONSUMER` without wedging the pool for other clients.
#[test]
fn pooled_forwarder_cuts_slow_consumer() {
    // Tiny queue so the sloth overflows fast, but a lag limit far above
    // any transient drop burst: the flooding healthy client must keep
    // surviving on recovery snapshots (which reset its lag), and the
    // sloth must be cut by the recovery *deadline* — its snapshot can
    // never land — not by racing the lag counter.
    let config = NetConfig {
        forwarder: ForwarderMode::Pooled(2),
        outbound_capacity: 2,
        lag_limit: 10_000,
        critical_send_timeout: Duration::from_millis(500),
        read_tick: Duration::from_millis(10),
        ..NetConfig::default()
    };
    let (server, _collab) = serve(&["alice", "sloth"], &["doc"], config);
    let addr = server.local_addr();

    let good = NetClient::connect(addr, "alice").unwrap();
    let doc = good.subscribe("doc").unwrap();

    // The sloth subscribes, then never reads again.
    let sloth = std::net::TcpStream::connect(addr).unwrap();
    {
        use std::io::{Read, Write};
        let mut s = &sloth;
        s.write_all(
            &tendax_net::Frame::Hello {
                version: tendax_net::PROTOCOL_VERSION,
                user: "sloth".into(),
                platform: "Linux".into(),
                token: String::new(),
            }
            .encode(),
        )
        .unwrap();
        // Read a few bytes (Welcome) then go silent.
        let mut buf = [0u8; 64];
        let _ = s.read(&mut buf);
        s.write_all(&tendax_net::Frame::Subscribe { name: "doc".into() }.encode())
            .unwrap();
    }

    // Flood until the sloth's queue overflows and the policy fires.
    let deadline = Instant::now() + WAIT;
    let mut last_ts = 0;
    while server.stats().slow_disconnects == 0 {
        assert!(Instant::now() < deadline, "slow consumer never cut");
        let (_, ts) = good
            .insert(doc, 0, "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx")
            .unwrap();
        last_ts = ts;
    }
    // The healthy client is unaffected.
    assert!(good.wait_synced(doc, last_ts, WAIT));
    good.ping().unwrap();
}

/// Hook-driven parking regression: on a transport that delivers publish
/// notifications (the in-process bus), pooled workers must park on the
/// condvar with **no fallback tick** — a quiet server makes no wakeups
/// at all, so the spurious-wakeup counter stays flat while idle, and
/// the first publish after the quiet period still wakes the pool
/// immediately (no lost-wakeup window between a poll and the park).
#[test]
fn hooked_pool_parks_without_fallback_tick() {
    let config = NetConfig {
        forwarder: ForwarderMode::Pooled(2),
        ..NetConfig::default()
    };
    let (server, _collab) = serve(&["alice", "bob"], &["doc"], config);
    let addr = server.local_addr();

    let a = NetClient::connect(addr, "alice").unwrap();
    let b = NetClient::connect(addr, "bob").unwrap();
    let doc = a.subscribe("doc").unwrap();
    assert_eq!(b.subscribe("doc").unwrap(), doc);

    let (_, ts) = a.insert(doc, 0, "warmup").unwrap();
    assert!(b.wait_synced(doc, ts, WAIT));

    // Let in-flight passes drain, then require silence: with untimed
    // parking every wakeup needs a signal, and nothing publishes here.
    // A revived 1 ms (or 20 ms) tick would add dozens of unproductive
    // wakeups over this window and trip the assertion.
    std::thread::sleep(Duration::from_millis(100));
    let before = server.stats().pool_spurious_wakeups;
    std::thread::sleep(Duration::from_millis(400));
    let after = server.stats().pool_spurious_wakeups;
    assert!(
        after - before <= 1,
        "idle pool kept waking: {before} -> {after} spurious wakeups in 400ms"
    );

    // The parked pool must still wake instantly on the next commit.
    let (_, ts) = a.insert(doc, 6, " over").unwrap();
    assert!(b.wait_synced(doc, ts, WAIT), "publish after idle park lost");
    assert_eq!(b.text(doc).unwrap(), "warmup over");
}
