//! End-to-end tests over real TCP on the loopback interface: the
//! multi-client convergence storm, hostile-input isolation, the
//! slow-consumer policy, and handshake rejection.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use rand::{rngs::SmallRng, Rng, SeedableRng};
use tendax_collab::CollabServer;
use tendax_net::{
    codes, ClientConfig, Frame, FrameBuffer, NetClient, NetConfig, NetError, NetServer,
    PROTOCOL_VERSION,
};
use tendax_text::{DocId, TextDb};

const WAIT: Duration = Duration::from_secs(30);

/// Build a CollabServer with the given users and documents, serve it on
/// an ephemeral loopback port.
fn serve(users: &[&str], docs: &[&str], config: NetConfig) -> (NetServer, CollabServer) {
    let tdb = TextDb::in_memory();
    let mut creator = None;
    for u in users {
        let id = tdb.create_user(u).unwrap();
        creator.get_or_insert(id);
    }
    for d in docs {
        tdb.create_document(d, creator.expect("at least one user"))
            .unwrap();
    }
    let collab = CollabServer::new(tdb);
    let server = NetServer::bind("127.0.0.1:0", collab.clone(), config).unwrap();
    (server, collab)
}

/// A protocol-speaking raw socket, for sending hostile bytes.
struct RawClient {
    stream: TcpStream,
    buf: FrameBuffer,
}

impl RawClient {
    fn connect(addr: std::net::SocketAddr) -> RawClient {
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        stream.set_read_timeout(Some(WAIT)).unwrap();
        RawClient {
            stream,
            buf: FrameBuffer::default(),
        }
    }

    fn hello(addr: std::net::SocketAddr, user: &str) -> RawClient {
        let mut c = RawClient::connect(addr);
        c.send(&Frame::Hello {
            version: PROTOCOL_VERSION,
            user: user.into(),
            platform: "Linux".into(),
            token: String::new(),
        });
        match c.recv().expect("welcome") {
            Frame::Welcome { .. } => c,
            other => panic!("expected Welcome, got {other:?}"),
        }
    }

    fn send(&mut self, frame: &Frame) {
        self.stream.write_all(&frame.encode()).unwrap();
    }

    fn send_bytes(&mut self, bytes: &[u8]) {
        self.stream.write_all(bytes).unwrap();
    }

    /// Next frame, or `None` on clean EOF.
    fn recv(&mut self) -> Option<Frame> {
        let mut scratch = [0u8; 4096];
        loop {
            if let Some((tag, payload)) = self.buf.try_frame().expect("framing") {
                return Some(Frame::decode(tag, &payload).expect("decode"));
            }
            match self.stream.read(&mut scratch) {
                Ok(0) => return None,
                Ok(n) => self.buf.extend(&scratch[..n]),
                Err(e) => panic!("raw read: {e}"),
            }
        }
    }

    /// Drain frames until EOF (or error), returning the last one seen.
    fn drain_to_eof(&mut self) -> Option<Frame> {
        let mut last = None;
        let mut scratch = [0u8; 4096];
        loop {
            match self.buf.try_frame() {
                Ok(Some((tag, payload))) => {
                    if let Ok(f) = Frame::decode(tag, &payload) {
                        last = Some(f);
                    }
                    continue;
                }
                Ok(None) => {}
                // Mid-teardown the server may cut a partially written
                // frame; framing errors at that point just end the scan.
                Err(_) => return last,
            }
            match self.stream.read(&mut scratch) {
                Ok(0) | Err(_) => return last,
                Ok(n) => self.buf.extend(&scratch[..n]),
            }
        }
    }
}

// ---------------------------------------------------------------------
// The acceptance storm: 8 clients over real TCP, concurrent edits,
// byte-identical convergence.
// ---------------------------------------------------------------------

#[test]
fn eight_clients_converge_after_concurrent_edit_storm() {
    const CLIENTS: usize = 8;
    const EDITS_PER_CLIENT: usize = 25;

    let users: Vec<String> = (0..CLIENTS).map(|i| format!("user{i}")).collect();
    let user_refs: Vec<&str> = users.iter().map(|s| s.as_str()).collect();
    let (server, collab) = serve(&user_refs, &["storm"], NetConfig::default());
    let addr = server.local_addr();

    let handles: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let user = users[i].clone();
            std::thread::spawn(move || {
                let client = NetClient::connect(addr, &user).unwrap();
                let doc = client.subscribe("storm").unwrap();
                let mut rng = SmallRng::seed_from_u64(0xC0FFEE + i as u64);
                let marker = (b'a' + i as u8) as char;
                let mut max_ts = 0u64;
                for _ in 0..EDITS_PER_CLIENT {
                    let len = client.text(doc).map(|t| t.chars().count()).unwrap_or(0);
                    let pos = rng.gen_range(0..=len);
                    let (_, ts) = if len > 4 && rng.gen_range(0..4usize) == 0 {
                        client.delete(doc, pos.min(len - 1), 1).unwrap()
                    } else {
                        let text: String = (0..rng.gen_range(1..4usize)).map(|_| marker).collect();
                        client.insert(doc, pos, &text).unwrap()
                    };
                    max_ts = max_ts.max(ts);
                }
                (client, doc, max_ts)
            })
        })
        .collect();

    let mut clients = Vec::new();
    let mut global_max = 0u64;
    let mut doc = 0u64;
    for h in handles {
        let (c, d, ts) = h.join().expect("client thread");
        global_max = global_max.max(ts);
        doc = d;
        clients.push(c);
    }

    // Every mirror must reach the global frontier…
    let ok: Vec<bool> = clients
        .iter()
        .map(|c| c.wait_synced(doc, global_max, Duration::from_secs(5)))
        .collect();
    if ok.iter().any(|b| !b) {
        let status: Vec<_> = clients.iter().map(|c| c.mirror_status(doc)).collect();
        let seen: Vec<u64> = clients.iter().map(|c| c.events_seen()).collect();
        panic!(
            "not all clients reached ts {global_max}: ok = {ok:?}; mirrors (ts, buffered, resync, applied) = {status:?}; events seen = {seen:?}; server stats = {:?}; bus stats = {:?}; bus subscribers = {}",
            server.stats(),
            collab.transport().stats(),
            collab.transport().subscriber_count(),
        );
    }

    // …and all nine views (8 mirrors + the database itself) must be
    // byte-identical.
    let user = collab.textdb().user_by_name("user0").unwrap();
    let authoritative = collab.textdb().open(DocId(doc), user).unwrap().text();
    assert!(!authoritative.is_empty());
    for (i, c) in clients.iter().enumerate() {
        assert_eq!(
            c.text(doc).unwrap(),
            authoritative,
            "client {i} diverged from the database"
        );
    }
}

// ---------------------------------------------------------------------
// Hostile input is isolated to the offending connection.
// ---------------------------------------------------------------------

#[test]
fn unknown_tag_disconnects_only_the_offender() {
    let (server, _collab) = serve(&["alice", "mallory"], &["doc"], NetConfig::default());
    let addr = server.local_addr();

    let good = NetClient::connect(addr, "alice").unwrap();
    let doc = good.subscribe("doc").unwrap();

    let mut evil = RawClient::hello(addr, "mallory");
    evil.send_bytes(&tendax_net::wire::encode_frame(0xEE, b"garbage"));
    match evil.drain_to_eof() {
        Some(Frame::Error { code, .. }) => assert_eq!(code, codes::PROTOCOL),
        other => panic!("expected a typed protocol error, got {other:?}"),
    }

    // The good client is untouched.
    let (_, ts) = good.insert(doc, 0, "still alive").unwrap();
    assert!(good.wait_synced(doc, ts, WAIT));
    assert_eq!(good.text(doc).unwrap(), "still alive");
    assert_eq!(server.stats().protocol_errors, 1);
}

#[test]
fn truncated_frame_then_disconnect_is_isolated() {
    let (server, _collab) = serve(&["alice", "mallory"], &["doc"], NetConfig::default());
    let addr = server.local_addr();

    let good = NetClient::connect(addr, "alice").unwrap();
    let doc = good.subscribe("doc").unwrap();

    // Mallory sends half an Edit frame, then vanishes mid-frame.
    let mut evil = RawClient::hello(addr, "mallory");
    let frame = Frame::Subscribe { name: "doc".into() }.encode();
    evil.send_bytes(&frame[..frame.len() / 2]);
    drop(evil);

    let (_, ts) = good.insert(doc, 0, "unharmed").unwrap();
    assert!(good.wait_synced(doc, ts, WAIT));
    assert_eq!(good.text(doc).unwrap(), "unharmed");
}

#[test]
fn oversized_length_prefix_gets_typed_error_and_close() {
    let (server, _collab) = serve(&["mallory"], &[], NetConfig::default());
    let mut evil = RawClient::hello(server.local_addr(), "mallory");
    evil.send_bytes(&u32::MAX.to_le_bytes());
    match evil.drain_to_eof() {
        Some(Frame::Error { code, message }) => {
            assert_eq!(code, codes::PROTOCOL);
            assert!(message.contains("exceeds maximum"), "got {message:?}");
        }
        other => panic!("expected typed error, got {other:?}"),
    }
}

#[test]
fn malformed_payload_gets_typed_error() {
    let (server, _collab) = serve(&["mallory"], &["doc"], NetConfig::default());
    let mut evil = RawClient::hello(server.local_addr(), "mallory");
    // A Subscribe frame whose string length prefix overruns the payload.
    let mut payload = Vec::new();
    payload.extend_from_slice(&100u32.to_le_bytes());
    payload.extend_from_slice(b"short");
    evil.send_bytes(&tendax_net::wire::encode_frame(0x04, &payload));
    match evil.drain_to_eof() {
        Some(Frame::Error { code, .. }) => assert_eq!(code, codes::PROTOCOL),
        other => panic!("expected typed error, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Handshake rejection.
// ---------------------------------------------------------------------

#[test]
fn handshake_rejects_bad_token_unknown_user_and_version_skew() {
    let config = NetConfig {
        token: Some("sesame".into()),
        ..NetConfig::default()
    };
    let (server, _collab) = serve(&["alice"], &[], config);
    let addr = server.local_addr();

    // Wrong token.
    let cfg = ClientConfig {
        token: "wrong".into(),
        ..ClientConfig::default()
    };
    match NetClient::connect_with(addr, "alice", cfg) {
        Err(NetError::Remote { code, .. }) => assert_eq!(code, codes::AUTH),
        other => panic!("bad token accepted: {other:?}"),
    }

    // Unknown user.
    let cfg = ClientConfig {
        token: "sesame".into(),
        ..ClientConfig::default()
    };
    match NetClient::connect_with(addr, "nobody", cfg) {
        Err(NetError::Remote { code, .. }) => assert_eq!(code, codes::AUTH),
        other => panic!("unknown user accepted: {other:?}"),
    }

    // Version skew (raw, because NetClient always sends the real one).
    let mut raw = RawClient::connect(addr);
    raw.send(&Frame::Hello {
        version: 999,
        user: "alice".into(),
        platform: "Linux".into(),
        token: "sesame".into(),
    });
    match raw.drain_to_eof() {
        Some(Frame::Error { code, .. }) => assert_eq!(code, codes::AUTH),
        other => panic!("version skew accepted: {other:?}"),
    }

    // Correct everything still works.
    let cfg = ClientConfig {
        token: "sesame".into(),
        ..ClientConfig::default()
    };
    let c = NetClient::connect_with(addr, "alice", cfg).unwrap();
    assert!(c.session() > 0);
    assert_eq!(server.stats().auth_failures, 3);
}

// ---------------------------------------------------------------------
// Slow-consumer policy over real sockets.
// ---------------------------------------------------------------------

#[test]
fn slow_consumer_is_cut_without_wedging_the_server() {
    let config = NetConfig {
        // Small enough that the sloth's queue overflows within a few
        // events of its writer blocking, but big enough that the
        // *healthy* client — whose writer drains promptly — never
        // overflows on a delivery burst: its convergence must go through
        // the ordinary event stream, not the drop-recovery path (that
        // path has its own test and is far slower on a shared-core CI
        // runner, which made this test flaky at capacity 2).
        outbound_capacity: 16,
        lag_limit: 3,
        // Long enough that the healthy client pushes several events into
        // the stalled connection's queue before the writer gives up — and
        // generous enough that a CPU-starved run (the whole workspace's
        // test binaries share one core in CI) can't trip it for the
        // *healthy* connection's reply frames. The sloth is cut by the
        // lag limit, not this timeout, so the slack costs nothing.
        critical_send_timeout: Duration::from_secs(10),
        read_tick: Duration::from_millis(10),
        ..NetConfig::default()
    };
    let (server, collab) = serve(&["alice", "sloth"], &["doc"], config);
    let addr = server.local_addr();

    let good = NetClient::connect(addr, "alice").unwrap();
    let doc = good.subscribe("doc").unwrap();

    // The sloth subscribes, then never reads again: its kernel buffer
    // fills, the writer blocks, the outbound queue fills, and every
    // further event counts as lag.
    let mut sloth = RawClient::hello(addr, "sloth");
    sloth.send(&Frame::Subscribe { name: "doc".into() });
    match sloth.recv() {
        Some(Frame::Snapshot { .. }) => {}
        other => panic!("expected snapshot, got {other:?}"),
    }

    // Sized so event frames fill the socket buffers after a handful of
    // edits (stalling the writer on its write timeout) while individual
    // edits stay fast enough that several more arrive during the stall,
    // overflowing the sloth's queue: both the drop counter and the
    // disconnect fire.
    let blob = "x".repeat(2 * 1024);
    // The sloth's writer has to ride out several socket write timeouts
    // before the lag limit trips, so the cut takes tens of seconds even
    // unloaded — size the deadline for a starved CI core, not a laptop.
    let deadline = Instant::now() + WAIT * 4;
    let mut last_ts = 0;
    while server.stats().slow_disconnects == 0 {
        assert!(
            Instant::now() < deadline,
            "slow consumer never cut; stats = {:?}",
            server.stats()
        );
        let (_, ts) = good.insert(doc, 0, &blob).unwrap();
        last_ts = ts;
    }
    assert!(server.stats().frames_dropped > 0);

    // The healthy client still converges, byte-identically with the db.
    // Its own frames may have been dropped while the test starved it of
    // CPU (shared-core CI), in which case convergence goes through a
    // recovery snapshot of the now-large document — give that path real
    // headroom instead of the interactive-scale WAIT.
    let converge = WAIT * 4;
    assert!(good.wait_synced(doc, last_ts, converge));
    let user = collab.textdb().user_by_name("alice").unwrap();
    let authoritative = collab.textdb().open(DocId(doc), user).unwrap().text();
    assert_eq!(good.text(doc).unwrap(), authoritative);

    // And new connections are still served.
    let late = NetClient::connect(addr, "sloth").unwrap();
    let d2 = late.subscribe("doc").unwrap();
    assert_eq!(d2, doc);
    assert!(late.wait_synced(doc, last_ts, converge));
    assert_eq!(late.text(doc).unwrap(), good.text(doc).unwrap());
}

// ---------------------------------------------------------------------
// Awareness and liveness over the wire.
// ---------------------------------------------------------------------

#[test]
fn awareness_presence_and_ping_round_trip() {
    let (server, _collab) = serve(&["alice", "bob"], &["doc"], NetConfig::default());
    let addr = server.local_addr();

    let a = NetClient::connect(addr, "alice").unwrap();
    let b = NetClient::connect(addr, "bob").unwrap();
    let doc = a.subscribe("doc").unwrap();
    b.subscribe("doc").unwrap();

    a.ping().unwrap();

    a.awareness(doc, Some(4), Some((1, 4))).unwrap();
    // Awareness is fire-and-forget; poll until the registry reflects it.
    let deadline = Instant::now() + WAIT;
    loop {
        let entries = b.presence(doc).unwrap();
        if let Some(p) = entries
            .iter()
            .find(|p| p.user_name == "alice" && p.cursor == Some(4))
        {
            assert_eq!(p.selection, Some((1, 4)));
            assert_eq!(p.doc, Some(doc));
            break;
        }
        assert!(Instant::now() < deadline, "alice's awareness never arrived");
        std::thread::sleep(Duration::from_millis(10));
    }

    // Dropping the subscription clears presence on the server (the
    // editor-doc drop path), so bob stops seeing alice on the doc.
    a.unsubscribe(doc).unwrap();
    let deadline = Instant::now() + WAIT;
    loop {
        let entries = b.presence(doc).unwrap();
        if !entries.iter().any(|p| p.user_name == "alice") {
            break;
        }
        assert!(Instant::now() < deadline, "alice's presence never cleared");
        std::thread::sleep(Duration::from_millis(10));
    }
    drop(server);
}

#[test]
fn resync_recovers_a_deliberately_poisoned_mirror() {
    let (server, _collab) = serve(&["alice", "bob"], &["doc"], NetConfig::default());
    let addr = server.local_addr();

    let a = NetClient::connect(addr, "alice").unwrap();
    let b = NetClient::connect(addr, "bob").unwrap();
    let doc = a.subscribe("doc").unwrap();
    b.subscribe("doc").unwrap();

    let (_, t1) = a.insert(doc, 0, "hello world").unwrap();
    assert!(b.wait_synced(doc, t1, WAIT));

    // Explicit resync must reproduce the same state.
    b.resync(doc).unwrap();
    assert_eq!(b.text(doc).unwrap(), "hello world");
    assert!(!b.needs_resync(doc));

    let (_, t2) = a.delete(doc, 0, 6).unwrap();
    assert!(b.wait_synced(doc, t2, WAIT));
    assert_eq!(b.text(doc).unwrap(), "world");
}
