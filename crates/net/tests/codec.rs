//! Wire-codec conformance: every frame type round-trips through
//! encode → FrameBuffer → decode, and every class of malformed input
//! yields a typed error — never a panic, never a silent misparse.

use tendax_net::{
    codes, EditOp, Frame, FrameBuffer, NetError, WireChar, WireEvent, WirePresence,
    PROTOCOL_VERSION,
};
use tendax_text::{CharId, DocId, Effect, StyleId, UserId};

/// One exemplar of every frame variant, with awkward values: empty and
/// non-ASCII strings, `None`/`Some` options, empty and multi-element
/// vectors, extreme integers.
fn exemplars() -> Vec<Frame> {
    let effects = vec![
        Effect::Insert {
            char: CharId(42),
            prev: None,
            ch: '𝄞',
            author: UserId(7),
            ts: -3,
            style: StyleId(2),
            src_doc: DocId(9),
            src_char: CharId(41),
            external: Some("clipboard://x".into()),
        },
        Effect::Insert {
            char: CharId(43),
            prev: Some(CharId(42)),
            ch: 'b',
            author: UserId(7),
            ts: 4,
            style: StyleId::NONE,
            src_doc: DocId::NONE,
            src_char: CharId::NONE,
            external: None,
        },
        Effect::Delete {
            char: CharId(42),
            by: UserId(8),
            ts: i64::MAX,
        },
        Effect::Undelete { char: CharId(42) },
        Effect::SetStyle {
            char: CharId(43),
            old: StyleId(2),
            new: StyleId(3),
        },
    ];
    vec![
        Frame::Hello {
            version: PROTOCOL_VERSION,
            user: "alicé".into(),
            platform: "Windows XP".into(),
            token: String::new(),
        },
        Frame::Welcome { session: u64::MAX },
        Frame::Error {
            code: codes::SLOW_CONSUMER,
            message: "déconnecté".into(),
        },
        Frame::Subscribe {
            name: "minutes".into(),
        },
        Frame::Snapshot {
            doc: 3,
            synced_ts: 77,
            chars: vec![
                WireChar {
                    id: 1,
                    ch: 'a',
                    deleted: false,
                    style: 0,
                },
                WireChar {
                    id: 2,
                    ch: '∂',
                    deleted: true,
                    style: 5,
                },
            ],
        },
        Frame::Snapshot {
            doc: 4,
            synced_ts: 0,
            chars: vec![],
        },
        Frame::Unsubscribe { doc: 3 },
        Frame::Edit {
            request: 1,
            doc: 3,
            op: EditOp::Insert {
                pos: 0,
                text: "héllo\nworld".into(),
            },
        },
        Frame::Edit {
            request: 2,
            doc: 3,
            op: EditOp::Delete { pos: 5, len: 2 },
        },
        Frame::EditOk {
            request: 2,
            op: 900,
            commit_ts: 901,
        },
        Frame::EditRejected {
            request: 3,
            message: "permission denied".into(),
        },
        Frame::Event(WireEvent {
            doc: 3,
            op: 900,
            commit_ts: 901,
            user: 7,
            origin: 12,
            kind: "insert".into(),
            effects,
        }),
        Frame::Event(WireEvent {
            doc: 3,
            op: 901,
            commit_ts: 902,
            user: 7,
            origin: 12,
            kind: String::new(),
            effects: vec![],
        }),
        Frame::Awareness {
            doc: 3,
            cursor: Some(14),
            selection: Some((3, 14)),
        },
        Frame::Awareness {
            doc: 3,
            cursor: None,
            selection: None,
        },
        Frame::PresenceQuery { doc: 3 },
        Frame::Presence {
            doc: 3,
            entries: vec![WirePresence {
                session: 12,
                user: 7,
                user_name: "alicé".into(),
                platform: "Mac OS X".into(),
                doc: Some(3),
                cursor: Some(14),
                selection: None,
                last_active: -1,
            }],
        },
        Frame::Ping { nonce: 0 },
        Frame::Pong { nonce: u64::MAX },
        Frame::Resync { doc: 3 },
        Frame::Bye,
    ]
}

#[test]
fn every_frame_type_round_trips() {
    for frame in exemplars() {
        let bytes = frame.encode();
        let mut fb = FrameBuffer::default();
        fb.extend(&bytes);
        let (tag, payload) = fb
            .try_frame()
            .expect("framing")
            .expect("one complete frame");
        assert_eq!(tag, frame.tag());
        let decoded = Frame::decode(tag, &payload).expect("decode");
        assert_eq!(decoded, frame, "round-trip mismatch for tag 0x{tag:02x}");
        assert_eq!(fb.try_frame().unwrap(), None, "no trailing frame");
    }
}

#[test]
fn frames_survive_arbitrary_stream_fragmentation() {
    // All exemplars concatenated, delivered in 7-byte slivers.
    let mut wire = Vec::new();
    for f in exemplars() {
        wire.extend_from_slice(&f.encode());
    }
    let mut fb = FrameBuffer::default();
    let mut decoded = Vec::new();
    for chunk in wire.chunks(7) {
        fb.extend(chunk);
        while let Some((tag, payload)) = fb.try_frame().unwrap() {
            decoded.push(Frame::decode(tag, &payload).unwrap());
        }
    }
    assert_eq!(decoded, exemplars());
}

#[test]
fn truncated_payloads_are_typed_errors_for_every_frame() {
    for frame in exemplars() {
        let bytes = frame.encode();
        let payload = &bytes[5..]; // strip [len][tag]
        if payload.is_empty() {
            continue; // Bye has no payload to truncate
        }
        // Chop the payload at every possible point; decode must return
        // an error (truncation or a bad-payload artifact of the cut),
        // never panic, and never accept the mutilated payload.
        for cut in 0..payload.len() {
            match Frame::decode(frame.tag(), &payload[..cut]) {
                Err(
                    NetError::Truncated { .. }
                    | NetError::BadPayload { .. }
                    | NetError::Protocol(_),
                ) => {}
                Ok(f) => panic!(
                    "tag 0x{:02x} cut at {cut}/{} decoded as {f:?}",
                    frame.tag(),
                    payload.len()
                ),
                Err(e) => panic!("tag 0x{:02x} cut at {cut}: unexpected {e:?}", frame.tag()),
            }
        }
    }
}

#[test]
fn trailing_garbage_is_rejected_for_every_frame() {
    for frame in exemplars() {
        let bytes = frame.encode();
        let mut payload = bytes[5..].to_vec();
        payload.push(0xAA);
        match Frame::decode(frame.tag(), &payload) {
            Err(NetError::BadPayload { .. } | NetError::Truncated { .. }) => {}
            other => panic!(
                "tag 0x{:02x} accepted trailing byte: {other:?}",
                frame.tag()
            ),
        }
    }
}

#[test]
fn unknown_tag_is_a_typed_error() {
    for tag in [0x00u8, 0x12, 0x7F, 0xFF] {
        match Frame::decode(tag, &[]) {
            Err(NetError::UnknownTag(t)) => assert_eq!(t, tag),
            other => panic!("tag 0x{tag:02x}: {other:?}"),
        }
    }
}

#[test]
fn hostile_length_prefixes_kill_the_stream_with_typed_errors() {
    // Oversized: rejected before allocation.
    let mut fb = FrameBuffer::default();
    fb.extend(&(u32::MAX).to_le_bytes());
    assert!(matches!(
        fb.try_frame(),
        Err(NetError::FrameTooLarge { .. })
    ));

    // Zero length: the tag byte is mandatory.
    let mut fb = FrameBuffer::default();
    fb.extend(&0u32.to_le_bytes());
    assert!(matches!(fb.try_frame(), Err(NetError::EmptyFrame)));
}

#[test]
fn mid_frame_cut_never_yields_a_frame() {
    // A partial frame in the buffer (stream ended mid-frame) is simply
    // "no frame yet"; the connection-level EOF turns it into Closed.
    let bytes = Frame::Subscribe {
        name: "minutes".into(),
    }
    .encode();
    for cut in 0..bytes.len() {
        let mut fb = FrameBuffer::default();
        fb.extend(&bytes[..cut]);
        assert_eq!(fb.try_frame().unwrap(), None, "cut at {cut}");
    }
}
