//! Client-side replica of a document, maintained from `Snapshot` and
//! `Event` frames.
//!
//! The mirror keeps the *full* character chain — tombstones included —
//! because committed effects address characters by id and may anchor an
//! insert on a deleted character.
//!
//! ## Ordering
//!
//! Events are published to the transport *after* their transaction
//! commits, outside the commit lock, so two concurrent editors can put
//! their events on the wire out of commit-timestamp order. The mirror
//! therefore cannot simply replay arrival order; it integrates each
//! insert the way the server's chain would have:
//!
//! * applying commits in ascending `commit_ts`, every insert lands
//!   immediately after its anchor, so among siblings sharing an anchor
//!   the *later* commit sits closer to the anchor;
//! * the mirror reproduces that final order for *any* arrival order by
//!   walking forward from the anchor and skipping siblings (and their
//!   subtrees) whose commit is newer than the incoming insert's.
//!
//! This is the classical RGA integration rule with `commit_ts` as the
//! precedence; given that every anchor exists before use (enforced by
//! buffering events until their dependencies arrive), any interleaving
//! converges to the server's chain. Deletes, undeletes and restyles are
//! last-writer-wins on the character, guarded by the commit timestamp.
//!
//! Characters loaded from a snapshot carry no anchor/commit metadata,
//! but they never need it: anything in a snapshot committed at or below
//! the snapshot's timestamp, so it always loses precedence to an event
//! applied on top (events at or below the snapshot are skipped).
//!
//! When the dependency buffer grows past a bound the mirror gives up
//! and flags itself for a resync — the client then requests a fresh
//! `Snapshot`.

use std::collections::{BTreeMap, HashSet};

use tendax_text::Effect;

use crate::protocol::{WireChar, WireEvent};

/// Buffered events past this many force a resync instead of waiting for
/// dependencies that will likely never arrive.
const MAX_BUFFERED: usize = 64;

/// Where a mirrored character was anchored when it was inserted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Anchor {
    /// Loaded from a snapshot: anchor unknown (and never needed).
    Unknown,
    /// Inserted at the document head.
    Head,
    /// Inserted after this character id.
    Char(u64),
}

/// One character of the replica plus the integration metadata.
#[derive(Debug, Clone)]
struct MirrorChar {
    id: u64,
    ch: char,
    deleted: bool,
    style: u64,
    anchor: Anchor,
    /// Commit timestamp of the insert (0 for snapshot-loaded chars).
    ts: u64,
    /// Commit timestamp of the last applied delete/undelete.
    flag_ts: u64,
    /// Commit timestamp of the last applied restyle.
    style_ts: u64,
}

/// A client-side replica of one document.
#[derive(Debug)]
pub struct MirrorDoc {
    doc: u64,
    /// Chain order, tombstones included.
    chars: Vec<MirrorChar>,
    /// Ids present in `chars`, for O(1) membership checks.
    ids: HashSet<u64>,
    /// The last inserted character and its position. Typing runs anchor
    /// each character on the previous one, so this turns the common
    /// anchor lookup into O(1); it stays valid because only inserts move
    /// positions and every insert refreshes it.
    last_insert: Option<(u64, usize)>,
    /// Commit timestamp of the last loaded snapshot: events at or below
    /// are already reflected and silently skipped.
    baseline: u64,
    /// Highest commit timestamp reflected in the replica.
    synced_ts: u64,
    /// Events waiting for their dependencies, keyed by (commit_ts, op).
    buffered: BTreeMap<(u64, u64), WireEvent>,
    needs_resync: bool,
    /// Events applied since construction (for stats/tests).
    applied: u64,
}

impl MirrorDoc {
    pub fn new(doc: u64, synced_ts: u64, chars: Vec<WireChar>) -> Self {
        let chars: Vec<MirrorChar> = chars.into_iter().map(MirrorChar::from_snapshot).collect();
        MirrorDoc {
            doc,
            ids: chars.iter().map(|c| c.id).collect(),
            chars,
            last_insert: None,
            baseline: synced_ts,
            synced_ts,
            buffered: BTreeMap::new(),
            needs_resync: false,
            applied: 0,
        }
    }

    pub fn doc(&self) -> u64 {
        self.doc
    }

    pub fn synced_ts(&self) -> u64 {
        self.synced_ts
    }

    pub fn needs_resync(&self) -> bool {
        self.needs_resync
    }

    pub fn applied(&self) -> u64 {
        self.applied
    }

    pub fn buffered(&self) -> usize {
        self.buffered.len()
    }

    /// Visible text (tombstones skipped).
    pub fn text(&self) -> String {
        self.chars
            .iter()
            .filter(|c| !c.deleted)
            .map(|c| c.ch)
            .collect()
    }

    /// Visible length in characters.
    pub fn len(&self) -> usize {
        self.chars.iter().filter(|c| !c.deleted).count()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Replace the replica with a fresh snapshot (subscribe or resync).
    pub fn load_snapshot(&mut self, synced_ts: u64, chars: Vec<WireChar>) {
        self.chars = chars.into_iter().map(MirrorChar::from_snapshot).collect();
        self.ids = self.chars.iter().map(|c| c.id).collect();
        self.last_insert = None;
        self.baseline = synced_ts;
        self.synced_ts = synced_ts;
        self.needs_resync = false;
        // Anything the snapshot already covers is obsolete; newer events
        // may now be applicable.
        self.buffered.retain(|(ts, _), _| *ts > synced_ts);
        self.drain();
    }

    /// Ingest one committed event. Returns `true` if the mirror advanced
    /// (the event or previously buffered ones were applied).
    pub fn apply_event(&mut self, ev: WireEvent) -> bool {
        if self.needs_resync {
            return false;
        }
        if ev.commit_ts <= self.baseline {
            // Already covered by the snapshot.
            return false;
        }
        self.buffered.insert((ev.commit_ts, ev.op), ev);
        let advanced = self.drain();
        if self.buffered.len() > MAX_BUFFERED {
            self.needs_resync = true;
        }
        advanced
    }

    /// Apply buffered events in commit order while their dependencies
    /// are satisfied.
    fn drain(&mut self) -> bool {
        let mut advanced = false;
        while let Some((&key, ev)) = self.buffered.iter().next() {
            if !self.applicable(ev) {
                break;
            }
            let ev = self.buffered.remove(&key).unwrap();
            for e in &ev.effects {
                self.apply_effect(e, ev.commit_ts);
            }
            self.synced_ts = self.synced_ts.max(ev.commit_ts);
            self.applied += 1;
            advanced = true;
        }
        advanced
    }

    fn index_of(&self, id: u64) -> Option<usize> {
        self.chars.iter().position(|c| c.id == id)
    }

    /// All referenced characters exist, or are introduced earlier in the
    /// same event.
    fn applicable(&self, ev: &WireEvent) -> bool {
        let mut introduced: HashSet<u64> = HashSet::new();
        for e in &ev.effects {
            let known = |id: u64| introduced.contains(&id) || self.ids.contains(&id);
            match e {
                Effect::Insert { char, prev, .. } => {
                    if let Some(p) = prev {
                        if !known(p.0) {
                            return false;
                        }
                    }
                    introduced.insert(char.0);
                }
                Effect::Delete { char, .. }
                | Effect::Undelete { char }
                | Effect::SetStyle { char, .. } => {
                    if !known(char.0) {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Chain position of a character's anchor: -1 for the head,
    /// `isize::MIN` for "unknown or missing" (which always terminates an
    /// integration scan — see `integrate_insert`).
    fn anchor_pos(&self, anchor: Anchor) -> isize {
        match anchor {
            Anchor::Unknown => isize::MIN,
            Anchor::Head => -1,
            Anchor::Char(id) => match self.index_of(id) {
                Some(i) => i as isize,
                None => isize::MIN,
            },
        }
    }

    /// Place a newly arrived insert where commit-order application would
    /// have put it, regardless of arrival order.
    ///
    /// Scanning forward from the anchor: a character anchored *before*
    /// our anchor means we have left the anchor's subtree; a sibling
    /// (same anchor) with an older commit loses precedence and we slot
    /// in front of it; a sibling with a newer commit keeps its spot and
    /// we keep walking (its descendants follow it and are skipped by the
    /// same rule). Snapshot-loaded characters have unknown anchors and
    /// commit 0: they always terminate the scan, which is correct —
    /// their commit is at or below the snapshot baseline, so they lose
    /// precedence to any event applied on top of it.
    fn integrate_insert(&mut self, id: u64, ch: char, style: u64, p_pos: isize, ev_ts: u64) {
        let mut i = (p_pos + 1) as usize;
        while i < self.chars.len() {
            let c = &self.chars[i];
            let a_pos = self.anchor_pos(c.anchor);
            if a_pos < p_pos {
                break;
            }
            if a_pos == p_pos && (c.ts, c.id) < (ev_ts, id) {
                break;
            }
            i += 1;
        }
        self.chars.insert(
            i,
            MirrorChar {
                id,
                ch,
                deleted: false,
                style,
                anchor: if p_pos < 0 {
                    Anchor::Head
                } else {
                    Anchor::Char(self.chars[p_pos as usize].id)
                },
                ts: ev_ts,
                flag_ts: 0,
                style_ts: 0,
            },
        );
        self.ids.insert(id);
        self.last_insert = Some((id, i));
    }

    fn apply_effect(&mut self, e: &Effect, ev_ts: u64) {
        match e {
            Effect::Insert {
                char,
                prev,
                ch,
                style,
                ..
            } => {
                // Idempotency: re-delivery of an applied event.
                if self.ids.contains(&char.0) {
                    return;
                }
                let p_pos = match prev {
                    None => -1,
                    Some(p) => match self.last_insert {
                        // Typing runs anchor on the char just inserted.
                        Some((lid, lpos)) if lid == p.0 => lpos as isize,
                        _ => match self.index_of(p.0) {
                            Some(i) => i as isize,
                            None => {
                                // Guarded by `applicable`; defensive only.
                                self.needs_resync = true;
                                return;
                            }
                        },
                    },
                };
                self.integrate_insert(char.0, *ch, style.0, p_pos, ev_ts);
            }
            Effect::Delete { char, .. } => {
                if let Some(i) = self.index_of(char.0) {
                    let c = &mut self.chars[i];
                    if ev_ts >= c.flag_ts {
                        c.deleted = true;
                        c.flag_ts = ev_ts;
                    }
                }
            }
            Effect::Undelete { char } => {
                if let Some(i) = self.index_of(char.0) {
                    let c = &mut self.chars[i];
                    if ev_ts >= c.flag_ts {
                        c.deleted = false;
                        c.flag_ts = ev_ts;
                    }
                }
            }
            Effect::SetStyle { char, new, .. } => {
                if let Some(i) = self.index_of(char.0) {
                    let c = &mut self.chars[i];
                    if ev_ts >= c.style_ts {
                        c.style = new.0;
                        c.style_ts = ev_ts;
                    }
                }
            }
        }
    }
}

impl MirrorChar {
    fn from_snapshot(w: WireChar) -> Self {
        MirrorChar {
            id: w.id,
            ch: w.ch,
            deleted: w.deleted,
            style: w.style,
            anchor: Anchor::Unknown,
            ts: 0,
            flag_ts: 0,
            style_ts: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tendax_text::{CharId, DocId, StyleId, UserId};

    fn insert(char: u64, prev: Option<u64>, ch: char) -> Effect {
        Effect::Insert {
            char: CharId(char),
            prev: prev.map(CharId),
            ch,
            author: UserId(1),
            ts: 0,
            style: StyleId::NONE,
            src_doc: DocId::NONE,
            src_char: CharId::NONE,
            external: None,
        }
    }

    fn event(ts: u64, effects: Vec<Effect>) -> WireEvent {
        WireEvent {
            doc: 1,
            op: ts,
            commit_ts: ts,
            user: 1,
            origin: 1,
            kind: "insert".into(),
            effects,
        }
    }

    #[test]
    fn applies_inserts_in_chain_order() {
        let mut m = MirrorDoc::new(1, 0, vec![]);
        m.apply_event(event(
            1,
            vec![insert(10, None, 'a'), insert(11, Some(10), 'b')],
        ));
        m.apply_event(event(2, vec![insert(12, Some(10), 'X')]));
        assert_eq!(m.text(), "aXb");
        assert_eq!(m.synced_ts(), 2);
    }

    #[test]
    fn buffers_until_dependency_arrives() {
        let mut m = MirrorDoc::new(1, 0, vec![]);
        // Event 2 anchors on a char introduced by event 1.
        assert!(!m.apply_event(event(2, vec![insert(11, Some(10), 'b')])));
        assert_eq!(m.buffered(), 1);
        assert!(m.apply_event(event(1, vec![insert(10, None, 'a')])));
        assert_eq!(m.text(), "ab");
        assert_eq!(m.buffered(), 0);
    }

    #[test]
    fn tombstones_keep_anchors_resolvable() {
        let mut m = MirrorDoc::new(1, 0, vec![]);
        m.apply_event(event(1, vec![insert(10, None, 'a')]));
        m.apply_event(event(
            2,
            vec![Effect::Delete {
                char: CharId(10),
                by: UserId(1),
                ts: 0,
            }],
        ));
        assert_eq!(m.text(), "");
        // Anchor on the tombstone still works.
        m.apply_event(event(3, vec![insert(11, Some(10), 'z')]));
        assert_eq!(m.text(), "z");
    }

    #[test]
    fn stale_events_below_snapshot_are_skipped() {
        let mut m = MirrorDoc::new(
            1,
            5,
            vec![WireChar {
                id: 10,
                ch: 'a',
                deleted: false,
                style: 0,
            }],
        );
        assert!(!m.apply_event(event(4, vec![insert(10, None, 'a')])));
        assert_eq!(m.text(), "a");
        assert_eq!(m.applied(), 0);
    }

    /// Publication happens outside the commit lock, so a lower-commit
    /// event can arrive after a higher-commit one was applied. The
    /// mirror must integrate it where commit-order application would
    /// have put it.
    #[test]
    fn late_event_behind_frontier_integrates_in_commit_order() {
        let mut m = MirrorDoc::new(1, 0, vec![]);
        // Commit order: ts1 'a' at head, then ts2 'b' at head → "ba".
        // Arrival order is inverted.
        assert!(m.apply_event(event(2, vec![insert(11, None, 'b')])));
        assert!(m.apply_event(event(1, vec![insert(10, None, 'a')])));
        assert!(!m.needs_resync());
        assert_eq!(m.text(), "ba");
        assert_eq!(m.synced_ts(), 2);
    }

    /// A late same-anchor insert must skip newer siblings *and their
    /// descendants* before taking its place.
    #[test]
    fn late_sibling_skips_newer_subtrees() {
        let mut m = MirrorDoc::new(1, 0, vec![]);
        // Commit order: a@1, z@2 (after a), x@3 (after a), y@4 (after x)
        // → server chain: a x y z.
        m.apply_event(event(1, vec![insert(10, None, 'a')]));
        m.apply_event(event(3, vec![insert(12, Some(10), 'x')]));
        m.apply_event(event(4, vec![insert(13, Some(12), 'y')]));
        // z arrives last despite committing second.
        m.apply_event(event(2, vec![insert(11, Some(10), 'z')]));
        assert_eq!(m.text(), "axyz");
        assert!(!m.needs_resync());
    }

    /// Delete/undelete are last-writer-wins on the commit timestamp even
    /// when they arrive out of order.
    #[test]
    fn flag_flips_are_last_writer_wins() {
        let mut m = MirrorDoc::new(1, 0, vec![]);
        m.apply_event(event(1, vec![insert(10, None, 'a')]));
        // Commit order: delete@2, undelete@3 → visible. Arrival order is
        // inverted; the stale delete must not win.
        m.apply_event(event(3, vec![Effect::Undelete { char: CharId(10) }]));
        m.apply_event(event(
            2,
            vec![Effect::Delete {
                char: CharId(10),
                by: UserId(1),
                ts: 0,
            }],
        ));
        assert_eq!(m.text(), "a");
    }

    #[test]
    fn runaway_buffer_flags_resync() {
        let mut m = MirrorDoc::new(1, 0, vec![]);
        for i in 0..(MAX_BUFFERED as u64 + 2) {
            // All anchored on a char that never arrives.
            m.apply_event(event(i + 10, vec![insert(1000 + i, Some(1), 'x')]));
        }
        assert!(m.needs_resync());
        // A snapshot recovers.
        m.load_snapshot(1000, vec![]);
        assert!(!m.needs_resync());
        assert_eq!(m.buffered(), 0);
    }

    #[test]
    fn snapshot_drops_covered_buffered_events() {
        let mut m = MirrorDoc::new(1, 0, vec![]);
        m.apply_event(event(3, vec![insert(11, Some(10), 'b')]));
        assert_eq!(m.buffered(), 1);
        // Snapshot at ts 5 already reflects event 3.
        m.load_snapshot(
            5,
            vec![
                WireChar {
                    id: 10,
                    ch: 'a',
                    deleted: false,
                    style: 0,
                },
                WireChar {
                    id: 11,
                    ch: 'b',
                    deleted: false,
                    style: 0,
                },
            ],
        );
        assert_eq!(m.buffered(), 0);
        assert_eq!(m.text(), "ab");
    }

    /// Random interleavings of a fixed commit history all converge to
    /// the commit-order result.
    #[test]
    fn arbitrary_arrival_orders_converge() {
        // Commit history over one document (ts = index + 1).
        let history: Vec<WireEvent> = vec![
            event(1, vec![insert(10, None, 'h'), insert(11, Some(10), 'i')]),
            event(2, vec![insert(12, Some(10), 'e')]),
            event(
                3,
                vec![Effect::Delete {
                    char: CharId(11),
                    by: UserId(1),
                    ts: 0,
                }],
            ),
            event(4, vec![insert(13, Some(11), 'x')]),
            event(5, vec![insert(14, None, 'w')]),
            event(6, vec![Effect::Undelete { char: CharId(11) }]),
            event(
                7,
                vec![Effect::SetStyle {
                    char: CharId(10),
                    old: StyleId(0),
                    new: StyleId(9),
                }],
            ),
        ];

        // Reference: apply in commit order.
        let mut reference = MirrorDoc::new(1, 0, vec![]);
        for ev in &history {
            reference.apply_event(ev.clone());
        }

        // A handful of deterministic shuffles (rotations + reversal).
        let n = history.len();
        for rot in 0..n {
            let mut order: Vec<usize> = (0..n).map(|i| (i + rot) % n).collect();
            if rot % 2 == 1 {
                order.reverse();
            }
            let mut m = MirrorDoc::new(1, 0, vec![]);
            for &i in &order {
                m.apply_event(history[i].clone());
            }
            assert_eq!(m.buffered(), 0, "order {order:?} left events buffered");
            assert!(!m.needs_resync(), "order {order:?} flagged resync");
            assert_eq!(m.text(), reference.text(), "order {order:?} diverged");
        }
    }
}
