//! # tendax-net
//!
//! Real TCP transport for the TeNDaX collaboration layer.
//!
//! The in-process [`LanBus`](tendax_collab::LanBus) simulates the
//! demo's LAN; this crate replaces the simulation with sockets. A
//! [`NetServer`] multiplexes many client connections over one
//! [`CollabServer`](tendax_collab::CollabServer): each connection
//! authenticates with a `Hello`/`Welcome` handshake, subscribes to
//! documents by name, submits edits, and receives the committed-event
//! broadcast plus awareness data — all over a length-prefixed binary
//! wire protocol (`[u32 len][u8 tag][payload]`, hand-rolled codec; see
//! [`wire`] and [`protocol`]).
//!
//! [`NetClient`] maintains a [`MirrorDoc`] replica per subscribed
//! document from the snapshot + event stream, converging byte-for-byte
//! with the server under concurrent editing.
//!
//! Both endpoints apply the same slow-consumer policy as the bus:
//! bounded outbound queues, drop-and-count lag for broadcast frames,
//! and eviction (with a typed `Error` frame) past the lag limit.
//! Malformed input from the network is always a typed [`NetError`] —
//! never a panic — and only ever costs the offending connection.
//!
//! ## Quick example
//!
//! ```
//! use tendax_collab::CollabServer;
//! use tendax_net::{NetClient, NetConfig, NetServer};
//! use tendax_text::TextDb;
//! use std::time::Duration;
//!
//! let tdb = TextDb::in_memory();
//! let alice = tdb.create_user("alice").unwrap();
//! tdb.create_user("bob").unwrap();
//! tdb.create_document("minutes", alice).unwrap();
//!
//! let server = NetServer::bind("127.0.0.1:0", CollabServer::new(tdb), NetConfig::default()).unwrap();
//! let addr = server.local_addr();
//!
//! let a = NetClient::connect(addr, "alice").unwrap();
//! let b = NetClient::connect(addr, "bob").unwrap();
//! let doc = a.subscribe("minutes").unwrap();
//! b.subscribe("minutes").unwrap();
//!
//! let (_op, ts) = a.insert(doc, 0, "Agenda").unwrap();
//! assert!(b.wait_synced(doc, ts, Duration::from_secs(5)));
//! assert_eq!(b.text(doc).unwrap(), "Agenda");
//! ```

pub mod client;
pub mod error;
pub mod mirror;
pub mod protocol;
pub mod server;
pub mod wire;

pub use client::{ClientConfig, NetClient};
pub use error::{codes, NetError, Result};
pub use mirror::MirrorDoc;
pub use protocol::{EditOp, Frame, WireChar, WireEvent, WirePresence, PROTOCOL_VERSION};
pub use server::{ForwarderMode, NetConfig, NetServer, NetServerStats};
pub use wire::{FrameBuffer, PayloadReader, PayloadWriter, MAX_FRAME};
