//! The TCP collaboration client.
//!
//! [`NetClient`] opens one connection, performs the `Hello`/`Welcome`
//! handshake synchronously, then spawns a reader thread that routes
//! incoming frames: committed `Event`s feed per-document [`MirrorDoc`]
//! replicas, reply frames (`Snapshot`, `EditOk`, `Presence`, `Pong`)
//! wake the caller blocked in [`NetClient::subscribe`] & co. The
//! request API is synchronous and serialized — one outstanding request
//! per connection — which matches the editor usage pattern and keeps
//! the protocol state machine trivial.
//!
//! An unsolicited `Snapshot` (the server's slow-consumer recovery path)
//! reloads the mirror transparently. A terminal `Error` frame (auth,
//! slow consumer, protocol) poisons the client: every subsequent call
//! returns the remote error.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::error::{NetError, Result};
use crate::mirror::MirrorDoc;
use crate::protocol::{EditOp, Frame, WirePresence, PROTOCOL_VERSION};
use crate::wire::FrameBuffer;

/// Tuning knobs of the client.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// How long a request waits for its reply frame.
    pub reply_timeout: Duration,
    /// Authentication token sent in `Hello`.
    pub token: String,
    /// Platform string advertised in `Hello`.
    pub platform: String,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            reply_timeout: Duration::from_secs(10),
            token: String::new(),
            platform: "Linux".into(),
        }
    }
}

/// What the single outstanding request is waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Expect {
    Nothing,
    Snapshot { doc: Option<u64> },
    EditReply { request: u64 },
    Presence { doc: u64 },
    Pong { nonce: u64 },
}

impl Expect {
    fn matches(&self, frame: &Frame) -> bool {
        match (self, frame) {
            (Expect::Snapshot { doc: None }, Frame::Snapshot { .. }) => true,
            (Expect::Snapshot { doc: Some(d) }, Frame::Snapshot { doc, .. }) => d == doc,
            (Expect::EditReply { request }, Frame::EditOk { request: r, .. }) => request == r,
            (Expect::EditReply { request }, Frame::EditRejected { request: r, .. }) => request == r,
            (Expect::Presence { doc }, Frame::Presence { doc: d, .. }) => doc == d,
            (Expect::Pong { nonce }, Frame::Pong { nonce: n }) => nonce == n,
            _ => false,
        }
    }
}

#[derive(Debug)]
struct ReplyState {
    expect: Expect,
    reply: Option<Result<Frame>>,
}

#[derive(Debug)]
struct ClientShared {
    mirrors: Mutex<HashMap<u64, MirrorDoc>>,
    /// Signalled whenever a mirror advances (for wait helpers).
    progress: Condvar,
    reply: Mutex<ReplyState>,
    reply_cv: Condvar,
    /// Terminal error: the connection is unusable.
    fatal: Mutex<Option<String>>,
    /// Event frames seen by the reader (diagnostics).
    events_seen: AtomicU64,
}

impl ClientShared {
    fn poison(&self, message: String) {
        let mut fatal = self.fatal.lock();
        if fatal.is_none() {
            *fatal = Some(message.clone());
        }
        drop(fatal);
        let mut r = self.reply.lock();
        if r.expect != Expect::Nothing {
            r.reply = Some(Err(NetError::Protocol(message)));
            r.expect = Expect::Nothing;
        }
        self.reply_cv.notify_all();
        self.progress.notify_all();
    }
}

/// A connected TCP collaboration client.
#[derive(Debug)]
pub struct NetClient {
    stream: Mutex<TcpStream>,
    shared: Arc<ClientShared>,
    session: u64,
    next_request: AtomicU64,
    reply_timeout: Duration,
    /// Serializes requests: one outstanding reply at a time.
    request_lock: Mutex<()>,
    reader: Option<JoinHandle<()>>,
}

impl NetClient {
    /// Connect and authenticate as `user`.
    pub fn connect(addr: impl ToSocketAddrs, user: &str) -> Result<NetClient> {
        Self::connect_with(addr, user, ClientConfig::default())
    }

    pub fn connect_with(
        addr: impl ToSocketAddrs,
        user: &str,
        config: ClientConfig,
    ) -> Result<NetClient> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;

        // Synchronous handshake before the reader thread exists.
        stream.set_read_timeout(Some(config.reply_timeout))?;
        stream.write_all(
            &Frame::Hello {
                version: PROTOCOL_VERSION,
                user: user.into(),
                platform: config.platform.clone(),
                token: config.token.clone(),
            }
            .encode(),
        )?;
        let mut buf = FrameBuffer::default();
        let mut scratch = [0u8; 4096];
        let session = loop {
            if let Some((tag, payload)) = buf.try_frame()? {
                match Frame::decode(tag, &payload)? {
                    Frame::Welcome { session } => break session,
                    Frame::Error { code, message } => {
                        return Err(NetError::Remote { code, message })
                    }
                    other => {
                        return Err(NetError::Protocol(format!(
                            "expected Welcome, got frame 0x{:02x}",
                            other.tag()
                        )))
                    }
                }
            }
            match stream.read(&mut scratch) {
                Ok(0) => return Err(NetError::Closed),
                Ok(n) => buf.extend(&scratch[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Err(NetError::Timeout)
                }
                Err(e) => return Err(NetError::Io(e)),
            }
        };
        stream.set_read_timeout(None)?;

        let shared = Arc::new(ClientShared {
            mirrors: Mutex::new(HashMap::new()),
            progress: Condvar::new(),
            reply: Mutex::new(ReplyState {
                expect: Expect::Nothing,
                reply: None,
            }),
            reply_cv: Condvar::new(),
            fatal: Mutex::new(None),
            events_seen: AtomicU64::new(0),
        });

        let reader = {
            let shared = Arc::clone(&shared);
            let stream = stream.try_clone()?;
            std::thread::Builder::new()
                .name("tendax-net-client".into())
                .spawn(move || reader_loop(stream, shared, buf))
                .expect("spawn client reader")
        };

        Ok(NetClient {
            stream: Mutex::new(stream),
            shared,
            session,
            next_request: AtomicU64::new(1),
            reply_timeout: config.reply_timeout,
            request_lock: Mutex::new(()),
            reader: Some(reader),
        })
    }

    /// The session id the server assigned in `Welcome`.
    pub fn session(&self) -> u64 {
        self.session
    }

    fn check_fatal(&self) -> Result<()> {
        match &*self.shared.fatal.lock() {
            Some(msg) => Err(NetError::Protocol(msg.clone())),
            None => Ok(()),
        }
    }

    /// The terminal error that poisoned this connection, if any.
    pub fn fatal(&self) -> Option<String> {
        self.shared.fatal.lock().clone()
    }

    /// Total `Event` frames received on this connection (diagnostics).
    pub fn events_seen(&self) -> u64 {
        self.shared.events_seen.load(Ordering::Relaxed)
    }

    fn send(&self, frame: &Frame) -> Result<()> {
        self.check_fatal()?;
        self.stream.lock().write_all(&frame.encode())?;
        Ok(())
    }

    /// Send `frame` and block until a frame matching `expect` arrives.
    fn request(&self, frame: Frame, expect: Expect) -> Result<Frame> {
        let _serial = self.request_lock.lock();
        self.check_fatal()?;
        {
            let mut r = self.shared.reply.lock();
            r.expect = expect;
            r.reply = None;
        }
        if let Err(e) = self.send(&frame) {
            self.shared.reply.lock().expect = Expect::Nothing;
            return Err(e);
        }
        let deadline = Instant::now() + self.reply_timeout;
        let mut r = self.shared.reply.lock();
        loop {
            if let Some(reply) = r.reply.take() {
                r.expect = Expect::Nothing;
                return reply;
            }
            let now = Instant::now();
            if now >= deadline
                || self
                    .shared
                    .reply_cv
                    .wait_for(&mut r, deadline - now)
                    .timed_out()
            {
                r.expect = Expect::Nothing;
                return Err(NetError::Timeout);
            }
        }
    }

    /// Subscribe to a document by name; returns its id once the initial
    /// snapshot has loaded into the local mirror.
    pub fn subscribe(&self, name: &str) -> Result<u64> {
        match self.request(
            Frame::Subscribe { name: name.into() },
            Expect::Snapshot { doc: None },
        )? {
            Frame::Snapshot { doc, .. } => Ok(doc),
            other => Err(NetError::Protocol(format!(
                "unexpected reply 0x{:02x}",
                other.tag()
            ))),
        }
    }

    /// Drop the subscription and the local mirror.
    pub fn unsubscribe(&self, doc: u64) -> Result<()> {
        self.send(&Frame::Unsubscribe { doc })?;
        self.shared.mirrors.lock().remove(&doc);
        Ok(())
    }

    /// Insert `text` at `pos` (a position in the client's current view;
    /// the server clamps it against the freshest state). Returns
    /// `(op, commit_ts)`.
    pub fn insert(&self, doc: u64, pos: usize, text: &str) -> Result<(u64, u64)> {
        self.edit(
            doc,
            EditOp::Insert {
                pos: pos as u64,
                text: text.into(),
            },
        )
    }

    /// Delete `len` characters at `pos`. Returns `(op, commit_ts)`.
    pub fn delete(&self, doc: u64, pos: usize, len: usize) -> Result<(u64, u64)> {
        self.edit(
            doc,
            EditOp::Delete {
                pos: pos as u64,
                len: len as u64,
            },
        )
    }

    fn edit(&self, doc: u64, op: EditOp) -> Result<(u64, u64)> {
        let request = self.next_request.fetch_add(1, Ordering::Relaxed);
        match self.request(
            Frame::Edit { request, doc, op },
            Expect::EditReply { request },
        )? {
            Frame::EditOk { op, commit_ts, .. } => Ok((op, commit_ts)),
            Frame::EditRejected { message, .. } => Err(NetError::Remote {
                code: crate::error::codes::REJECTED,
                message,
            }),
            other => Err(NetError::Protocol(format!(
                "unexpected reply 0x{:02x}",
                other.tag()
            ))),
        }
    }

    /// The mirrored text of a subscribed document.
    pub fn text(&self, doc: u64) -> Option<String> {
        self.shared.mirrors.lock().get(&doc).map(|m| m.text())
    }

    /// Commit-timestamp frontier of the mirror.
    pub fn synced_ts(&self, doc: u64) -> Option<u64> {
        self.shared.mirrors.lock().get(&doc).map(|m| m.synced_ts())
    }

    /// Mirror internals for diagnostics: `(synced_ts, buffered,
    /// needs_resync, applied)`.
    pub fn mirror_status(&self, doc: u64) -> Option<(u64, usize, bool, u64)> {
        self.shared
            .mirrors
            .lock()
            .get(&doc)
            .map(|m| (m.synced_ts(), m.buffered(), m.needs_resync(), m.applied()))
    }

    /// Whether the mirror has flagged itself for resync.
    pub fn needs_resync(&self, doc: u64) -> bool {
        self.shared
            .mirrors
            .lock()
            .get(&doc)
            .is_some_and(|m| m.needs_resync())
    }

    /// Request a fresh snapshot and reload the mirror.
    pub fn resync(&self, doc: u64) -> Result<()> {
        self.request(Frame::Resync { doc }, Expect::Snapshot { doc: Some(doc) })?;
        Ok(())
    }

    /// Block until the mirror's frontier reaches `ts` (or timeout).
    /// Returns `true` on success.
    pub fn wait_synced(&self, doc: u64, ts: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut mirrors = self.shared.mirrors.lock();
        loop {
            match mirrors.get(&doc) {
                Some(m) if m.synced_ts() >= ts => return true,
                Some(m) if m.needs_resync() => {
                    // Resync needs the request path; do it unlocked.
                    drop(mirrors);
                    if self.resync(doc).is_err() {
                        return false;
                    }
                    mirrors = self.shared.mirrors.lock();
                }
                _ => {
                    let now = Instant::now();
                    if now >= deadline
                        || self
                            .shared
                            .progress
                            .wait_for(&mut mirrors, deadline - now)
                            .timed_out()
                    {
                        return false;
                    }
                }
            }
        }
    }

    /// Publish cursor/selection awareness for a document.
    pub fn awareness(
        &self,
        doc: u64,
        cursor: Option<usize>,
        selection: Option<(usize, usize)>,
    ) -> Result<()> {
        self.send(&Frame::Awareness {
            doc,
            cursor: cursor.map(|c| c as u64),
            selection: selection.map(|(a, b)| (a as u64, b as u64)),
        })
    }

    /// Who is editing `doc` right now, per the server's registry.
    pub fn presence(&self, doc: u64) -> Result<Vec<WirePresence>> {
        match self.request(Frame::PresenceQuery { doc }, Expect::Presence { doc })? {
            Frame::Presence { entries, .. } => Ok(entries),
            other => Err(NetError::Protocol(format!(
                "unexpected reply 0x{:02x}",
                other.tag()
            ))),
        }
    }

    /// Round-trip liveness probe.
    pub fn ping(&self) -> Result<()> {
        let nonce = self.next_request.fetch_add(1, Ordering::Relaxed);
        self.request(Frame::Ping { nonce }, Expect::Pong { nonce })?;
        Ok(())
    }

    /// Graceful close: `Bye`, then tear down the reader.
    pub fn close(&mut self) {
        let _ = self.send(&Frame::Bye);
        let _ = self.stream.lock().shutdown(std::net::Shutdown::Both);
        if let Some(h) = self.reader.take() {
            let _ = h.join();
        }
    }
}

impl Drop for NetClient {
    fn drop(&mut self) {
        self.close();
    }
}

fn reader_loop(mut stream: TcpStream, shared: Arc<ClientShared>, mut buf: FrameBuffer) {
    let mut scratch = vec![0u8; 64 * 1024];
    loop {
        let frame = loop {
            match buf.try_frame() {
                Ok(Some((tag, payload))) => match Frame::decode(tag, &payload) {
                    Ok(f) => break f,
                    Err(e) => {
                        shared.poison(format!("undecodable frame from server: {e}"));
                        return;
                    }
                },
                Ok(None) => {}
                Err(e) => {
                    shared.poison(format!("framing error from server: {e}"));
                    return;
                }
            }
            match stream.read(&mut scratch) {
                Ok(0) => {
                    shared.poison(NetError::Closed.to_string());
                    return;
                }
                Ok(n) => buf.extend(&scratch[..n]),
                Err(e) => {
                    shared.poison(format!("read error: {e}"));
                    return;
                }
            }
        };

        // Mirror maintenance happens for every Event/Snapshot, solicited
        // or not; reply delivery is separate.
        match &frame {
            Frame::Event(ev) => {
                shared.events_seen.fetch_add(1, Ordering::Relaxed);
                let mut mirrors = shared.mirrors.lock();
                if let Some(m) = mirrors.get_mut(&ev.doc) {
                    m.apply_event(ev.clone());
                    shared.progress.notify_all();
                }
                continue;
            }
            Frame::Snapshot {
                doc,
                synced_ts,
                chars,
            } => {
                let mut mirrors = shared.mirrors.lock();
                match mirrors.get_mut(doc) {
                    Some(m) => m.load_snapshot(*synced_ts, chars.clone()),
                    None => {
                        mirrors.insert(*doc, MirrorDoc::new(*doc, *synced_ts, chars.clone()));
                    }
                }
                shared.progress.notify_all();
                // Fall through: may also be the reply to Subscribe/Resync.
            }
            _ => {}
        }

        let mut r = shared.reply.lock();
        if r.expect.matches(&frame) {
            r.reply = Some(Ok(frame));
            r.expect = Expect::Nothing;
            shared.reply_cv.notify_all();
        } else if let Frame::Error { code, message } = frame {
            // An error frame outside a request is terminal (e.g. the
            // slow-consumer cut); inside a request it answers it.
            if r.expect != Expect::Nothing {
                r.reply = Some(Err(NetError::Remote { code, message }));
                r.expect = Expect::Nothing;
                shared.reply_cv.notify_all();
            } else {
                drop(r);
                shared.poison(NetError::Remote { code, message }.to_string());
                return;
            }
        }
    }
}
