//! Typed errors of the wire protocol and transport.
//!
//! Nothing on the network path is allowed to panic: every malformed
//! byte sequence, truncated frame or protocol violation maps to a
//! `NetError`, and the server's reaction is always scoped to the one
//! connection that produced it.

use std::fmt;

use tendax_text::TextError;

/// Error codes carried by `Frame::Error` on the wire.
pub mod codes {
    /// Authentication failed (unknown user, bad token, version skew).
    pub const AUTH: u16 = 1;
    /// The peer violated the protocol (bad frame, wrong state).
    pub const PROTOCOL: u16 = 2;
    /// The connection was dropped for lagging (slow consumer).
    pub const SLOW_CONSUMER: u16 = 3;
    /// The request referenced something that does not exist.
    pub const NOT_FOUND: u16 = 4;
    /// The edit was rejected by the database (permissions, position).
    pub const REJECTED: u16 = 5;
    /// The server is at its connection limit; try again later.
    pub const CAPACITY: u16 = 6;
}

/// Everything that can go wrong on the wire. Malformed input from a
/// peer is *data*, not a bug: decoding returns these, never panics.
#[derive(Debug)]
pub enum NetError {
    /// Underlying socket error.
    Io(std::io::Error),
    /// The peer closed the connection.
    Closed,
    /// A frame's length prefix exceeds the negotiated maximum — either
    /// corruption or a hostile peer; the connection is dropped before
    /// any allocation of that size.
    FrameTooLarge { len: u32, max: u32 },
    /// A zero-length frame (the tag byte is mandatory).
    EmptyFrame,
    /// Payload decoding ran past the end of the frame.
    Truncated {
        tag: u8,
        needed: usize,
        remaining: usize,
    },
    /// No such frame tag in this protocol version.
    UnknownTag(u8),
    /// The payload bytes don't decode as the frame the tag promises.
    BadPayload { tag: u8, reason: String },
    /// The peer sent a well-formed frame the protocol does not allow in
    /// this state (e.g. `Edit` before `Hello`).
    Protocol(String),
    /// Handshake rejected.
    Auth(String),
    /// The server answered with an error frame.
    Remote { code: u16, message: String },
    /// This connection was dropped for lagging behind the broadcast.
    SlowConsumer,
    /// The server refused the connection: it is already serving its
    /// configured maximum number of clients.
    AtCapacity { limit: usize },
    /// Timed out waiting for a reply.
    Timeout,
    /// A database error surfaced through the protocol.
    Text(TextError),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "io error: {e}"),
            NetError::Closed => write!(f, "connection closed by peer"),
            NetError::FrameTooLarge { len, max } => {
                write!(f, "frame length {len} exceeds maximum {max}")
            }
            NetError::EmptyFrame => write!(f, "zero-length frame (missing tag byte)"),
            NetError::Truncated {
                tag,
                needed,
                remaining,
            } => write!(
                f,
                "frame 0x{tag:02x} truncated: needed {needed} more bytes, {remaining} remain"
            ),
            NetError::UnknownTag(t) => write!(f, "unknown frame tag 0x{t:02x}"),
            NetError::BadPayload { tag, reason } => {
                write!(f, "bad payload for frame 0x{tag:02x}: {reason}")
            }
            NetError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            NetError::Auth(msg) => write!(f, "authentication failed: {msg}"),
            NetError::Remote { code, message } => {
                write!(f, "server error {code}: {message}")
            }
            NetError::SlowConsumer => write!(f, "disconnected: lagging behind the broadcast"),
            NetError::AtCapacity { limit } => {
                write!(f, "server at capacity ({limit} connections)")
            }
            NetError::Timeout => write!(f, "timed out waiting for a reply"),
            NetError::Text(e) => write!(f, "database error: {e}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            NetError::Text(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<TextError> for NetError {
    fn from(e: TextError) -> Self {
        NetError::Text(e)
    }
}

/// Result alias for the net crate.
pub type Result<T> = std::result::Result<T, NetError>;
