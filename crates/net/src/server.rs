//! The TCP collaboration server.
//!
//! Multiplexes many client connections over one [`CollabServer`]: each
//! accepted socket gets a handshake, a server-side [`EditorSession`]
//! (so edits reuse the retry/awareness machinery), a reader thread, a
//! writer thread draining a **bounded** outbound queue, and one
//! forwarder thread per subscribed document pumping committed events
//! from the in-process [`Transport`] onto the wire.
//!
//! ## Slow-consumer policy
//!
//! The outbound queue has a fixed capacity. Broadcast frames (`Event`)
//! are enqueued with `try_push`: when the queue is full the frame is
//! dropped and counted as lag, and the event stream is *lost* — the
//! client has a gap it cannot detect, so the forwarder suppresses
//! further events (each counted as lag) and schedules a recovery
//! snapshot. Delivering the snapshot resets the lag counter; failing to
//! deliver it within `critical_send_timeout`, or accumulating more than
//! `lag_limit` outstanding lag before it lands, kills the connection:
//! the queue is cleared, a final `Error{SLOW_CONSUMER}` frame is
//! emitted, and the socket closes. Reply frames (`Snapshot`, `EditOk`,
//! `Pong`, …) are *critical*: the sender waits up to
//! `critical_send_timeout` for queue space and kills the connection if
//! the client cannot even absorb replies. This is the [`LanBus`] policy
//! (bound, count, evict) plus the resync step a remote mirror needs —
//! one slow editor can never wedge the server or the other editors.
//!
//! ## Error isolation
//!
//! A malformed frame, unknown tag, or protocol violation terminates
//! *that* connection with a typed error frame; every other connection
//! and the accept loop are untouched.

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use tendax_collab::{CollabServer, EditorDoc, EditorSession, Platform};
use tendax_text::DocId;

use crate::error::{codes, NetError, Result};
use crate::protocol::{EditOp, Frame, WireChar, WireEvent, WirePresence, PROTOCOL_VERSION};
use crate::wire::FrameBuffer;

/// How committed events get forwarded from the in-process transport
/// onto connections' outbound queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForwarderMode {
    /// One dedicated pump thread per (connection, document)
    /// subscription — the original design. Simple, but the server's
    /// thread count scales as connections × subscribed documents.
    PerSubscription,
    /// A fixed pool of worker threads multiplexing every subscription
    /// on the server. Thread count is constant regardless of how many
    /// clients subscribe to how many documents. The value is the worker
    /// count (clamped to at least 1).
    Pooled(usize),
}

/// Tuning knobs of the TCP server.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Shared secret required in `Hello::token`; `None` accepts any.
    pub token: Option<String>,
    /// Outbound queue capacity, in frames, per connection.
    pub outbound_capacity: usize,
    /// Dropped frames tolerated before a lagging connection is cut.
    pub lag_limit: u64,
    /// How long a critical (reply) frame may wait for queue space.
    pub critical_send_timeout: Duration,
    /// Socket read timeout of the per-connection reader loop; bounds
    /// how quickly kill flags and shutdown are observed.
    pub read_tick: Duration,
    /// Maximum simultaneously served connections. Excess clients are
    /// turned away with a `Frame::Error { code: CAPACITY }` goodbye
    /// before any per-connection threads or sessions exist, so an
    /// accept flood cannot exhaust the process.
    pub max_connections: usize,
    /// Event-forwarding strategy (see [`ForwarderMode`]).
    pub forwarder: ForwarderMode,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            token: None,
            outbound_capacity: 1024,
            lag_limit: 256,
            critical_send_timeout: Duration::from_secs(5),
            read_tick: Duration::from_millis(100),
            max_connections: 256,
            forwarder: ForwarderMode::Pooled(4),
        }
    }
}

/// Counters exposed by [`NetServer::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetServerStats {
    /// Connections accepted (including ones that failed the handshake).
    pub accepted: u64,
    /// Handshakes rejected (bad version, unknown user, bad token).
    pub auth_failures: u64,
    /// Connections dropped for malformed frames / protocol violations.
    pub protocol_errors: u64,
    /// Connections dropped by the slow-consumer policy.
    pub slow_disconnects: u64,
    /// Frames dropped from full outbound queues across all connections.
    pub frames_dropped: u64,
    /// Event frames successfully enqueued by forwarders across all
    /// connections.
    pub events_forwarded: u64,
    /// Connections turned away at the `max_connections` limit.
    pub capacity_rejects: u64,
    /// Threads created for event forwarding over the server's lifetime:
    /// one per subscription in [`ForwarderMode::PerSubscription`], the
    /// fixed worker count in [`ForwarderMode::Pooled`].
    pub forwarder_threads: u64,
    /// Pooled-forwarder wakeups whose following pass over the task
    /// queue delivered nothing. With a hook-driven transport these
    /// should stay near zero; a climbing count means workers are being
    /// notified (or tick-polled) without work to do.
    pub pool_spurious_wakeups: u64,
}

#[derive(Debug, Default)]
struct StatCells {
    accepted: AtomicU64,
    auth_failures: AtomicU64,
    protocol_errors: AtomicU64,
    slow_disconnects: AtomicU64,
    frames_dropped: AtomicU64,
    events_forwarded: AtomicU64,
    capacity_rejects: AtomicU64,
    forwarder_threads: AtomicU64,
    pool_spurious_wakeups: AtomicU64,
}

/// Bounded outbound frame queue with a kill switch.
#[derive(Debug)]
struct OutQueue {
    state: Mutex<QueueState>,
    /// Signalled when frames arrive (writer waits on this).
    data: Condvar,
    /// Signalled when space frees up (critical senders wait on this).
    space: Condvar,
    capacity: usize,
    lagged: AtomicU64,
}

#[derive(Debug, Default)]
struct QueueState {
    frames: VecDeque<Vec<u8>>,
    /// No more pushes; the writer drains what remains, then closes.
    closing: bool,
}

impl OutQueue {
    fn new(capacity: usize) -> Self {
        OutQueue {
            state: Mutex::new(QueueState::default()),
            data: Condvar::new(),
            space: Condvar::new(),
            capacity,
            lagged: AtomicU64::new(0),
        }
    }

    /// Enqueue a droppable frame. Full queue = drop + lag count.
    fn try_push(&self, frame: Vec<u8>) -> bool {
        let mut s = self.state.lock();
        if s.closing {
            return false;
        }
        if s.frames.len() >= self.capacity {
            drop(s);
            self.lagged.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        s.frames.push_back(frame);
        self.data.notify_one();
        true
    }

    /// Enqueue a reply frame, waiting up to `timeout` for space.
    fn push_critical(&self, frame: Vec<u8>, timeout: Duration) -> Result<()> {
        let mut s = self.state.lock();
        loop {
            if s.closing {
                return Err(NetError::Closed);
            }
            if s.frames.len() < self.capacity {
                s.frames.push_back(frame);
                self.data.notify_one();
                return Ok(());
            }
            if self.space.wait_for(&mut s, timeout).timed_out() {
                return Err(NetError::SlowConsumer);
            }
        }
    }

    /// Discard everything queued, emit one final frame, and close.
    fn kill(&self, last_frame: Option<Vec<u8>>) {
        let mut s = self.state.lock();
        if s.closing {
            return;
        }
        s.frames.clear();
        if let Some(f) = last_frame {
            s.frames.push_back(f);
        }
        s.closing = true;
        self.data.notify_all();
        self.space.notify_all();
    }

    /// Next frame for the writer; `None` once closed and drained.
    fn pop(&self) -> Option<Vec<u8>> {
        let mut s = self.state.lock();
        loop {
            if let Some(f) = s.frames.pop_front() {
                self.space.notify_one();
                return Some(f);
            }
            if s.closing {
                return None;
            }
            self.data.wait(&mut s);
        }
    }

    fn lagged(&self) -> u64 {
        self.lagged.load(Ordering::Relaxed)
    }

    /// Count a suppressed (not even attempted) frame as lag.
    fn note_lag(&self) {
        self.lagged.fetch_add(1, Ordering::Relaxed);
    }

    /// A recovery snapshot was delivered: outstanding lag is resolved.
    fn reset_lag(&self) {
        self.lagged.store(0, Ordering::Relaxed);
    }
}

/// Handles shared between a connection's threads.
#[derive(Debug)]
struct ConnShared {
    queue: OutQueue,
    /// Set when any thread decides the connection must die.
    dead: AtomicBool,
    stream: TcpStream,
}

impl ConnShared {
    fn kill(&self, last_frame: Option<Vec<u8>>) {
        self.dead.store(true, Ordering::Release);
        self.queue.kill(last_frame);
    }

    fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Acquire)
    }
}

/// A running TCP server. Dropping it shuts everything down.
#[derive(Debug)]
pub struct NetServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<Arc<ConnShared>>>>,
    stats: Arc<StatCells>,
    pool: Option<Arc<ForwarderPool>>,
}

/// Decrements the live-connection gauge when a connection thread exits,
/// however it exits.
struct LiveGuard(Arc<AtomicUsize>);

impl Drop for LiveGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

impl NetServer {
    /// Bind and start accepting. `addr` may use port 0 for an ephemeral
    /// port; see [`NetServer::local_addr`].
    pub fn bind(
        addr: impl ToSocketAddrs,
        collab: CollabServer,
        config: NetConfig,
    ) -> Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<Arc<ConnShared>>>> = Arc::new(Mutex::new(Vec::new()));
        let stats = Arc::new(StatCells::default());
        let pool = match config.forwarder {
            ForwarderMode::PerSubscription => None,
            ForwarderMode::Pooled(n) => Some(ForwarderPool::start(
                n.max(1),
                collab.clone(),
                config.clone(),
                Arc::clone(&stats),
            )),
        };

        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let conns = Arc::clone(&conns);
            let stats = Arc::clone(&stats);
            let pool = pool.clone();
            let live = Arc::new(AtomicUsize::new(0));
            std::thread::Builder::new()
                .name("tendax-net-accept".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if shutdown.load(Ordering::Acquire) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        stats.accepted.fetch_add(1, Ordering::Relaxed);
                        if live.load(Ordering::Acquire) >= config.max_connections {
                            stats.capacity_rejects.fetch_add(1, Ordering::Relaxed);
                            reject_at_capacity(stream, config.max_connections);
                            continue;
                        }
                        // Reap finished connections so the registry does
                        // not grow with server lifetime.
                        conns.lock().retain(|c: &Arc<ConnShared>| !c.is_dead());
                        let collab = collab.clone();
                        let config = config.clone();
                        let conns = Arc::clone(&conns);
                        let stats = Arc::clone(&stats);
                        let pool = pool.clone();
                        live.fetch_add(1, Ordering::AcqRel);
                        let guard = LiveGuard(Arc::clone(&live));
                        let spawned = std::thread::Builder::new()
                            .name("tendax-net-conn".into())
                            .spawn(move || {
                                let _guard = guard;
                                handle_connection(stream, collab, config, conns, stats, pool);
                            });
                        // `guard` moved into the thread on success; a
                        // failed spawn drops it here, undoing the count.
                        let _ = spawned;
                    }
                })
                .expect("spawn accept thread")
        };

        Ok(NetServer {
            addr,
            shutdown,
            accept: Some(accept),
            conns,
            stats,
            pool,
        })
    }

    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn stats(&self) -> NetServerStats {
        NetServerStats {
            accepted: self.stats.accepted.load(Ordering::Relaxed),
            auth_failures: self.stats.auth_failures.load(Ordering::Relaxed),
            protocol_errors: self.stats.protocol_errors.load(Ordering::Relaxed),
            slow_disconnects: self.stats.slow_disconnects.load(Ordering::Relaxed),
            frames_dropped: self.stats.frames_dropped.load(Ordering::Relaxed),
            events_forwarded: self.stats.events_forwarded.load(Ordering::Relaxed),
            capacity_rejects: self.stats.capacity_rejects.load(Ordering::Relaxed),
            forwarder_threads: self.stats.forwarder_threads.load(Ordering::Relaxed),
            pool_spurious_wakeups: self.stats.pool_spurious_wakeups.load(Ordering::Relaxed),
        }
    }

    /// Stop accepting and tear down every live connection.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for conn in self.conns.lock().drain(..) {
            conn.kill(None);
            let _ = conn.stream.shutdown(std::net::Shutdown::Both);
        }
        if let Some(pool) = self.pool.take() {
            pool.shutdown();
        }
    }
}

/// Turn away a connection at the capacity limit: best-effort drain of
/// the client's `Hello` (so closing the socket does not RST the goodbye
/// frame out of the peer's receive buffer), one typed `Error` frame,
/// close. Runs inline in the accept thread with short timeouts — no
/// per-connection threads or sessions are ever created for a rejected
/// client.
fn reject_at_capacity(stream: TcpStream, limit: usize) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let mut buf = FrameBuffer::default();
    let mut scratch = [0u8; 4096];
    let mut s = &stream;
    loop {
        match buf.try_frame() {
            Ok(Some(_)) | Err(_) => break,
            Ok(None) => {}
        }
        match s.read(&mut scratch) {
            Ok(n) if n > 0 => buf.extend(&scratch[..n]),
            _ => break,
        }
    }
    let _ = s.write_all(
        &Frame::Error {
            code: codes::CAPACITY,
            message: NetError::AtCapacity { limit }.to_string(),
        }
        .encode(),
    );
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn platform_from_wire(s: &str) -> Platform {
    match s {
        "Windows XP" => Platform::WindowsXp,
        "Linux" => Platform::Linux,
        "Mac OS X" => Platform::MacOsX,
        other => Platform::Other(other.to_owned()),
    }
}

/// Snapshot a *freshly opened* editor. Only valid right after open: a
/// long-lived handle's `synced_ts` advances on rebuild, not on applied
/// remote events, so snapshotting one later would understate the
/// frontier (see [`db_snapshot`]).
fn snapshot_frame(ed: &EditorDoc) -> Frame {
    let chars = ed
        .handle()
        .snapshot_chars()
        .into_iter()
        .map(|(id, ch, deleted, style)| WireChar {
            id: id.0,
            ch,
            deleted,
            style: style.0,
        })
        .collect();
    Frame::Snapshot {
        doc: ed.doc().0,
        synced_ts: ed.handle().synced_ts(),
        chars,
    }
}

/// Build a `Snapshot` frame from a fresh database open, so `synced_ts`
/// and the character chain describe the same (current) commit frontier.
fn db_snapshot(collab: &CollabServer, doc: DocId, user: tendax_text::UserId) -> Option<Frame> {
    let h = collab.textdb().open(doc, user).ok()?;
    Some(Frame::Snapshot {
        doc: doc.0,
        synced_ts: h.synced_ts(),
        chars: h
            .snapshot_chars()
            .into_iter()
            .map(|(id, ch, deleted, style)| WireChar {
                id: id.0,
                ch,
                deleted,
                style: style.0,
            })
            .collect(),
    })
}

/// One subscription's forwarder control block. `pump` is `Some` in
/// [`ForwarderMode::PerSubscription`] (a dedicated thread to join); in
/// pooled mode the `stop` flag tells the pool to discard the task on
/// its next visit.
struct SubState {
    editor: EditorDoc,
    stop: Arc<AtomicBool>,
    pump: Option<JoinHandle<()>>,
}

impl SubState {
    fn stop(mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.pump.take() {
            let _ = h.join();
        }
        // Dropping `editor` clears this session's presence on the doc.
    }
}

/// How long a worker parks once a full pass over the task queue
/// produced no events, on a transport whose publish hook is a no-op
/// ([`Transport::supports_publish_hook`] is `false`): with no
/// notification path, polling is the only way to observe new events.
/// Hook-driven transports park without any timeout instead — the
/// epoch-checked condvar protocol below makes that safe.
const POOL_IDLE_BACKOFF: Duration = Duration::from_millis(1);

/// How many tasks a pool worker claims from the shared queue per lock
/// acquisition. Visits are non-blocking, so a larger batch amortizes
/// queue-mutex traffic without starving other workers for long.
const POOL_VISIT_BATCH: usize = 16;

/// Per-attempt wait for a recovery snapshot's queue space in pooled
/// mode. Deliberately short: a worker must not be pinned for the full
/// `critical_send_timeout` by one slow consumer — the overall deadline
/// is tracked across visits in [`PumpTask::recover_by`].
const POOL_RECOVERY_TRY: Duration = Duration::from_millis(10);

/// One subscription's forwarding state, owned by the pool between
/// worker visits.
struct PumpTask {
    doc: DocId,
    source: Box<dyn tendax_collab::EventSource>,
    shared: Arc<ConnShared>,
    stop: Arc<AtomicBool>,
    user: tendax_text::UserId,
    /// The client has an undetectable gap; suppress events until a
    /// recovery snapshot lands (same protocol as the dedicated pump).
    lost: bool,
    /// Deadline for delivering the pending recovery snapshot; set when
    /// `lost` flips true, cleared when the snapshot lands.
    recover_by: Option<Instant>,
}

/// A fixed set of worker threads multiplexing every subscription's
/// event forwarding. Workers take one task at a time off the shared
/// queue (which serializes each task without per-task locks), drain its
/// pending events without blocking, and put it back; a worker only
/// parks ([`POOL_IDLE_BACKOFF`]) after a whole pass found nothing.
struct ForwarderPool {
    tasks: Mutex<VecDeque<PumpTask>>,
    /// Signalled when tasks are submitted, events are published, or
    /// shutdown begins.
    wake: Condvar,
    shutdown: AtomicBool,
    /// The transport delivers publish notifications
    /// ([`Transport::supports_publish_hook`]): workers park on the
    /// condvar without a fallback tick.
    hooked: bool,
    /// Wake-signal generation, bumped by every submit/publish/shutdown
    /// before its notify. A worker records the epoch at the start of a
    /// pass and parks only if it is unchanged when it takes the queue
    /// lock — the poll happens outside that lock, so this is what
    /// closes the "published right after an empty poll" window that an
    /// untimed park would otherwise sleep through. Signals notify
    /// *under* the queue lock, so a parked worker can never miss one.
    epoch: AtomicU64,
    collab: CollabServer,
    config: NetConfig,
    stats: Arc<StatCells>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for ForwarderPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ForwarderPool")
            .field("tasks", &self.tasks.lock().len())
            .finish_non_exhaustive()
    }
}

impl ForwarderPool {
    fn start(
        workers: usize,
        collab: CollabServer,
        config: NetConfig,
        stats: Arc<StatCells>,
    ) -> Arc<ForwarderPool> {
        let hooked = collab.transport().supports_publish_hook();
        let pool = Arc::new(ForwarderPool {
            tasks: Mutex::new(VecDeque::new()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            hooked,
            epoch: AtomicU64::new(0),
            collab,
            config,
            stats,
            workers: Mutex::new(Vec::with_capacity(workers)),
        });
        let mut handles = pool.workers.lock();
        for i in 0..workers {
            let pool2 = Arc::clone(&pool);
            pool.stats.forwarder_threads.fetch_add(1, Ordering::Relaxed);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("tendax-net-pool-{i}"))
                    .spawn(move || pool2.worker_loop())
                    .expect("spawn pool worker"),
            );
        }
        drop(handles);
        // Wake parked workers the moment anything is published, so the
        // pool delivers with commit-driven latency instead of polling.
        // On a hooked transport this is the *only* wake source for
        // parked idle workers, so the signal follows the epoch protocol
        // (see [`ForwarderPool::signal`]). Weak: the hook must not keep
        // the pool (and its collab/bus cycle) alive — once the pool is
        // gone the hook deregisters itself by returning false.
        let weak = Arc::downgrade(&pool);
        pool.collab
            .transport()
            .register_publish_hook(Box::new(move || match weak.upgrade() {
                Some(pool) => {
                    pool.signal();
                    true
                }
                None => false,
            }));
        pool
    }

    /// Bump the wake epoch and notify every parked worker. The notify
    /// happens under the queue lock: a worker holds that lock from its
    /// final epoch check until the condvar takes it inside `wait`, so
    /// the signal either lands before the check (epoch mismatch, no
    /// park) or after the park (notify delivered) — never in between.
    fn signal(&self) {
        self.epoch.fetch_add(1, Ordering::Release);
        let _guard = self.tasks.lock();
        self.wake.notify_all();
    }

    /// Register a new subscription with the pool.
    fn submit(&self, task: PumpTask) {
        self.epoch.fetch_add(1, Ordering::Release);
        let mut guard = self.tasks.lock();
        guard.push_back(task);
        self.wake.notify_all();
    }

    fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        self.signal();
        let handles: Vec<_> = self.workers.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
        // Dropping the remaining tasks unsubscribes their sources.
        self.tasks.lock().clear();
    }

    fn worker_loop(self: Arc<Self>) {
        // Consecutive unproductive visits. Once a full pass over the
        // queue yields no events, the worker parks instead of spinning
        // through non-blocking polls.
        let mut idle_streak = 0usize;
        // The previous iteration ended in a park. If the pass that
        // follows the wakeup delivers nothing, the wakeup was spurious
        // (counted so receipts can prove hook-driven parking is quiet).
        let mut woke = false;
        let mut batch: Vec<PumpTask> = Vec::with_capacity(POOL_VISIT_BATCH);
        loop {
            if self.shutdown.load(Ordering::Acquire) {
                return;
            }
            // Epoch at the start of the pass: the polls below run
            // outside the queue lock, so before parking the worker
            // re-checks this under the lock — any signal since (publish,
            // submit, shutdown) aborts the park instead of being lost.
            let pass_epoch = self.epoch.load(Ordering::Acquire);
            // Take a batch of tasks in one lock acquisition: with
            // hundreds of subscriptions and a handful of workers, the
            // shared queue's mutex is the scaling bottleneck, not the
            // polls themselves.
            let queue_len = {
                let mut guard = self.tasks.lock();
                let len = guard.len();
                let take = len.min(POOL_VISIT_BATCH);
                batch.extend(guard.drain(..take));
                len
            };
            if batch.is_empty() {
                if std::mem::take(&mut woke) {
                    self.stats
                        .pool_spurious_wakeups
                        .fetch_add(1, Ordering::Relaxed);
                }
                let mut guard = self.tasks.lock();
                if guard.is_empty() && !self.shutdown.load(Ordering::Acquire) {
                    // Queue emptiness is guarded by this lock and every
                    // submit notifies under it, so the hooked park needs
                    // no timeout at all; hookless transports keep a tick
                    // only to notice events, not tasks.
                    if self.hooked {
                        self.wake.wait(&mut guard);
                    } else {
                        self.wake.wait_for(&mut guard, Duration::from_millis(20));
                    }
                    woke = true;
                }
                idle_streak = 0;
                continue;
            }
            let visited = batch.len();
            let mut any_progress = false;
            // A surviving task mid-recovery waits on *queue space*, which
            // frees when the connection's writer drains — no pool signal
            // fires for that. A worker that just requeued such a task
            // must keep a retry tick instead of parking untimed.
            let mut needs_tick = false;
            let mut survivors: Vec<PumpTask> = Vec::with_capacity(visited);
            for mut task in batch.drain(..) {
                if task.stop.load(Ordering::Acquire) || task.shared.is_dead() {
                    continue; // discard; dropping the source unsubscribes
                }
                let (keep, progress) = self.pump(&mut task);
                any_progress |= progress;
                if keep {
                    needs_tick |= task.lost;
                    survivors.push(task);
                }
            }
            if !survivors.is_empty() {
                self.tasks.lock().extend(survivors.drain(..));
            }
            if any_progress {
                idle_streak = 0;
                woke = false;
            } else {
                if std::mem::take(&mut woke) {
                    self.stats
                        .pool_spurious_wakeups
                        .fetch_add(1, Ordering::Relaxed);
                }
                idle_streak += visited;
                if idle_streak >= queue_len {
                    idle_streak = 0;
                    let mut guard = self.tasks.lock();
                    if !self.shutdown.load(Ordering::Acquire) {
                        if self.hooked && !needs_tick {
                            // Pure condvar parking: sleep only if no
                            // signal has fired since the pass began.
                            if self.epoch.load(Ordering::Acquire) == pass_epoch {
                                self.wake.wait(&mut guard);
                                woke = true;
                            }
                        } else if needs_tick {
                            self.wake.wait_for(&mut guard, POOL_RECOVERY_TRY);
                            woke = true;
                        } else {
                            self.wake.wait_for(&mut guard, POOL_IDLE_BACKOFF);
                            woke = true;
                        }
                    }
                }
            }
        }
    }

    /// One non-blocking forwarding visit for `task`. Returns
    /// `(keep, progress)`: whether to requeue the task, and whether the
    /// visit did any work (drives the caller's idle backoff). Same
    /// protocol as [`spawn_forwarder`]'s loop body, except that a
    /// recovery snapshot blocked on queue space is retried across
    /// visits against `recover_by` instead of pinning a thread for the
    /// full critical timeout.
    fn pump(&self, task: &mut PumpTask) -> (bool, bool) {
        let events = task.source.poll();
        let mut progress = !events.is_empty();
        for ev in events {
            if task.lost {
                self.stats.frames_dropped.fetch_add(1, Ordering::Relaxed);
                task.shared.queue.note_lag();
                continue;
            }
            let frame = Frame::Event(WireEvent::from(ev.as_ref())).encode();
            if task.shared.queue.try_push(frame) {
                self.stats.events_forwarded.fetch_add(1, Ordering::Relaxed);
            } else {
                self.stats.frames_dropped.fetch_add(1, Ordering::Relaxed);
                task.lost = true;
            }
        }
        if task.source.lagged_out() {
            task.source = self.collab.transport().connect(task.doc, Duration::ZERO);
            task.lost = true;
        }
        if task.lost {
            progress = true; // recovery in flight: keep visiting promptly
            let deadline = *task
                .recover_by
                .get_or_insert_with(|| Instant::now() + self.config.critical_send_timeout);
            if let Some(snap) = db_snapshot(&self.collab, task.doc, task.user) {
                match task
                    .shared
                    .queue
                    .push_critical(snap.encode(), POOL_RECOVERY_TRY)
                {
                    Ok(()) => {
                        task.shared.queue.reset_lag();
                        task.lost = false;
                        task.recover_by = None;
                    }
                    Err(_) if Instant::now() >= deadline => {
                        self.stats.slow_disconnects.fetch_add(1, Ordering::Relaxed);
                        task.shared.kill(Some(
                            Frame::Error {
                                code: codes::SLOW_CONSUMER,
                                message: NetError::SlowConsumer.to_string(),
                            }
                            .encode(),
                        ));
                        return (false, true);
                    }
                    Err(_) => {} // retry on the next visit
                }
            }
        }
        (true, progress)
    }
}

fn handle_connection(
    stream: TcpStream,
    collab: CollabServer,
    config: NetConfig,
    conns: Arc<Mutex<Vec<Arc<ConnShared>>>>,
    stats: Arc<StatCells>,
    pool: Option<Arc<ForwarderPool>>,
) {
    let _ = stream.set_nodelay(true);
    let shared = Arc::new(ConnShared {
        queue: OutQueue::new(config.outbound_capacity),
        dead: AtomicBool::new(false),
        stream: match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        },
    });
    conns.lock().push(Arc::clone(&shared));

    // Writer thread: drains the bounded queue onto the socket. The
    // write timeout is the last line of the slow-consumer defence: a
    // peer that stops reading long enough to fill the kernel buffer
    // loses the connection instead of pinning this thread forever.
    let writer = {
        let shared = Arc::clone(&shared);
        let stats = Arc::clone(&stats);
        let mut out = match shared.stream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        };
        let _ = out.set_write_timeout(Some(config.critical_send_timeout));
        std::thread::Builder::new()
            .name("tendax-net-writer".into())
            .spawn(move || {
                while let Some(frame) = shared.queue.pop() {
                    if let Err(e) = out.write_all(&frame) {
                        // A write timeout means the peer stopped reading
                        // long enough to fill the kernel buffer: that is
                        // the slow-consumer policy firing, not an I/O
                        // accident, so account for it as such.
                        if matches!(
                            e.kind(),
                            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                        ) {
                            stats.slow_disconnects.fetch_add(1, Ordering::Relaxed);
                        }
                        shared.kill(None);
                        break;
                    }
                }
                let _ = out.shutdown(std::net::Shutdown::Both);
            })
            .expect("spawn writer thread")
    };

    let result = serve_client(&stream, &collab, &config, &shared, &stats, pool.as_ref());

    match result {
        Ok(()) => shared.kill(None),
        Err(err) => {
            let (code, counts_as) = match &err {
                NetError::Auth(_) => (codes::AUTH, &stats.auth_failures),
                NetError::SlowConsumer => (codes::SLOW_CONSUMER, &stats.slow_disconnects),
                NetError::AtCapacity { .. } => (codes::CAPACITY, &stats.capacity_rejects),
                NetError::Io(_) | NetError::Closed => (0, &stats.accepted),
                _ => (codes::PROTOCOL, &stats.protocol_errors),
            };
            if code != 0 {
                counts_as.fetch_add(1, Ordering::Relaxed);
                let frame = Frame::Error {
                    code,
                    message: err.to_string(),
                }
                .encode();
                shared.kill(Some(frame));
            } else {
                shared.kill(None);
            }
        }
    }
    let _ = writer.join();
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// Read one frame, honoring the read-tick timeout: `Ok(None)` means the
/// tick elapsed with no complete frame (check flags and keep going).
fn read_tick(
    mut stream: &TcpStream,
    buf: &mut FrameBuffer,
    scratch: &mut [u8],
) -> Result<Option<(u8, Vec<u8>)>> {
    if let Some(frame) = buf.try_frame()? {
        return Ok(Some(frame));
    }
    match stream.read(scratch) {
        Ok(0) => Err(NetError::Closed),
        Ok(n) => {
            buf.extend(&scratch[..n]);
            buf.try_frame()
        }
        Err(e)
            if e.kind() == std::io::ErrorKind::WouldBlock
                || e.kind() == std::io::ErrorKind::TimedOut =>
        {
            Ok(None)
        }
        Err(e) => Err(NetError::Io(e)),
    }
}

fn serve_client(
    stream: &TcpStream,
    collab: &CollabServer,
    config: &NetConfig,
    shared: &Arc<ConnShared>,
    stats: &Arc<StatCells>,
    pool: Option<&Arc<ForwarderPool>>,
) -> Result<()> {
    stream.set_read_timeout(Some(config.read_tick))?;
    let mut buf = FrameBuffer::default();
    let mut scratch = vec![0u8; 64 * 1024];

    // --- Handshake: the first frame must be Hello. -------------------
    let hello = loop {
        if shared.is_dead() {
            return Ok(());
        }
        if let Some((tag, payload)) = read_tick(stream, &mut buf, &mut scratch)? {
            break Frame::decode(tag, &payload)?;
        }
    };
    let Frame::Hello {
        version,
        user,
        platform,
        token,
    } = hello
    else {
        return Err(NetError::Protocol(format!(
            "expected Hello, got frame 0x{:02x}",
            hello.tag()
        )));
    };
    if version != PROTOCOL_VERSION {
        return Err(NetError::Auth(format!(
            "protocol version {version} unsupported (server speaks {PROTOCOL_VERSION})"
        )));
    }
    if let Some(required) = &config.token {
        if &token != required {
            return Err(NetError::Auth("bad token".into()));
        }
    }
    let session: EditorSession = collab
        .connect(&user, platform_from_wire(&platform))
        .map_err(|e| NetError::Auth(format!("unknown user {user:?}: {e}")))?;
    let session_id = session.id();
    shared.queue.push_critical(
        Frame::Welcome {
            session: session_id.0,
        }
        .encode(),
        config.critical_send_timeout,
    )?;

    // --- Main loop. --------------------------------------------------
    let mut subs: HashMap<DocId, SubState> = HashMap::new();
    let critical = |frame: Frame| -> Result<()> {
        shared
            .queue
            .push_critical(frame.encode(), config.critical_send_timeout)
    };

    let run = loop {
        if shared.is_dead() {
            break Ok(());
        }
        // The forwarders count lag; the reader enforces the limit so the
        // error frame is produced exactly once.
        if shared.queue.lagged() > config.lag_limit {
            break Err(NetError::SlowConsumer);
        }
        let frame = match read_tick(stream, &mut buf, &mut scratch) {
            Ok(None) => continue,
            Ok(Some((tag, payload))) => Frame::decode(tag, &payload)?,
            Err(e) => break Err(e),
        };
        match frame {
            Frame::Subscribe { name } => {
                let doc = match collab.textdb().document_by_name(&name) {
                    Ok(doc) => doc,
                    Err(e) => {
                        critical(Frame::Error {
                            code: codes::NOT_FOUND,
                            message: format!("no document {name:?}: {e}"),
                        })?;
                        continue;
                    }
                };
                if subs.contains_key(&doc) {
                    match db_snapshot(collab, doc, session.user()) {
                        Some(f) => critical(f)?,
                        None => critical(Frame::Error {
                            code: codes::REJECTED,
                            message: format!("cannot snapshot {name:?}"),
                        })?,
                    }
                    continue;
                }
                // Order matters: the forwarder's event source connects
                // *before* the snapshot is taken, so no committed event
                // can fall between them — events older than the snapshot
                // are dropped client-side by the ts gate.
                let source = collab.transport().connect(doc, Duration::ZERO);
                let editor = match session.open_id(doc) {
                    Ok(ed) => ed,
                    Err(e) => {
                        critical(Frame::Error {
                            code: codes::REJECTED,
                            message: format!("cannot open {name:?}: {e}"),
                        })?;
                        continue;
                    }
                };
                critical(snapshot_frame(&editor))?;
                let stop = Arc::new(AtomicBool::new(false));
                let pump = match pool {
                    Some(pool) => {
                        pool.submit(PumpTask {
                            doc,
                            source,
                            shared: Arc::clone(shared),
                            stop: Arc::clone(&stop),
                            user: session.user(),
                            lost: false,
                            recover_by: None,
                        });
                        None
                    }
                    None => Some(spawn_forwarder(
                        doc,
                        source,
                        Arc::clone(shared),
                        Arc::clone(&stop),
                        collab.clone(),
                        session.user(),
                        config.clone(),
                        Arc::clone(stats),
                    )),
                };
                subs.insert(doc, SubState { editor, stop, pump });
            }
            Frame::Unsubscribe { doc } => {
                if let Some(sub) = subs.remove(&DocId(doc)) {
                    sub.stop();
                }
            }
            Frame::Edit { request, doc, op } => {
                let Some(sub) = subs.get_mut(&DocId(doc)) else {
                    critical(Frame::EditRejected {
                        request,
                        message: "not subscribed to this document".into(),
                    })?;
                    continue;
                };
                let ed = &mut sub.editor;
                // Catch up on remote events so positions resolve against
                // the freshest server state; client positions are
                // advisory and clamped (they may race remote edits).
                ed.sync();
                let outcome = match op {
                    EditOp::Insert { pos, text } => {
                        let pos = (pos as usize).min(ed.len());
                        ed.type_text(pos, &text)
                    }
                    EditOp::Delete { pos, len } => {
                        let pos = (pos as usize).min(ed.len());
                        let len = (len as usize).min(ed.len() - pos);
                        ed.delete(pos, len)
                    }
                };
                match outcome {
                    Ok(receipt) => critical(Frame::EditOk {
                        request,
                        op: receipt.op.0,
                        commit_ts: receipt.commit_ts,
                    })?,
                    Err(e) => critical(Frame::EditRejected {
                        request,
                        message: e.to_string(),
                    })?,
                }
            }
            Frame::Awareness {
                doc,
                cursor,
                selection,
            } => {
                collab.presence_update(session_id, |p| {
                    p.doc = Some(DocId(doc));
                    p.cursor = cursor.map(|c| c as usize);
                    p.selection = selection.map(|(a, b)| (a as usize, b as usize));
                });
            }
            Frame::PresenceQuery { doc } => {
                let entries = collab
                    .editors_on(DocId(doc))
                    .iter()
                    .map(WirePresence::from)
                    .collect();
                critical(Frame::Presence { doc, entries })?;
            }
            Frame::Ping { nonce } => critical(Frame::Pong { nonce })?,
            Frame::Resync { doc } => {
                if !subs.contains_key(&DocId(doc)) {
                    critical(Frame::Error {
                        code: codes::NOT_FOUND,
                        message: "not subscribed to this document".into(),
                    })?;
                    continue;
                }
                // The snapshot comes from a fresh database open, not the
                // long-lived server-side editor: a fresh handle's
                // `synced_ts` is the true current commit frontier,
                // whereas the editor's only advances on full rebuilds.
                match db_snapshot(collab, DocId(doc), session.user()) {
                    Some(f) => critical(f)?,
                    None => critical(Frame::Error {
                        code: codes::REJECTED,
                        message: "cannot snapshot document".into(),
                    })?,
                }
            }
            Frame::Bye => break Ok(()),
            // Server-to-client frames arriving here are a violation.
            other => {
                break Err(NetError::Protocol(format!(
                    "client may not send frame 0x{:02x}",
                    other.tag()
                )))
            }
        }
    };

    for (_, sub) in subs.drain() {
        sub.stop();
    }
    collab.awareness().remove(session_id);
    run
}

/// Spawn the per-subscription forwarder: pumps committed events from the
/// in-process transport onto this connection's outbound queue.
#[allow(clippy::too_many_arguments)]
fn spawn_forwarder(
    doc: DocId,
    mut source: Box<dyn tendax_collab::EventSource>,
    shared: Arc<ConnShared>,
    stop: Arc<AtomicBool>,
    collab: CollabServer,
    user: tendax_text::UserId,
    config: NetConfig,
    stats: Arc<StatCells>,
) -> JoinHandle<()> {
    stats.forwarder_threads.fetch_add(1, Ordering::Relaxed);
    std::thread::Builder::new()
        .name("tendax-net-pump".into())
        .spawn(move || {
            // Once an event frame is dropped the client has a gap it
            // cannot detect, so the stream is `lost`: further events are
            // suppressed (each counted as lag) until a recovery snapshot
            // is delivered, which resets the lag counter. A client that
            // cannot absorb the recovery snapshot within the critical
            // timeout — or whose outstanding lag passes `lag_limit`
            // before recovery lands (the reader enforces that) — is cut.
            let mut lost = false;
            loop {
                if stop.load(Ordering::Acquire) || shared.is_dead() {
                    return;
                }
                for ev in source.poll_timeout(config.read_tick) {
                    if lost {
                        stats.frames_dropped.fetch_add(1, Ordering::Relaxed);
                        shared.queue.note_lag();
                        continue;
                    }
                    let frame = Frame::Event(WireEvent::from(ev.as_ref())).encode();
                    if shared.queue.try_push(frame) {
                        stats.events_forwarded.fetch_add(1, Ordering::Relaxed);
                    } else {
                        stats.frames_dropped.fetch_add(1, Ordering::Relaxed);
                        lost = true;
                    }
                }
                // Evicted from the in-process bus (this pump itself
                // lagged): resubscribe, then resync the client.
                if source.lagged_out() {
                    source = collab.transport().connect(doc, Duration::ZERO);
                    lost = true;
                }
                if lost {
                    let Some(snap) = db_snapshot(&collab, doc, user) else {
                        continue;
                    };
                    match shared
                        .queue
                        .push_critical(snap.encode(), config.critical_send_timeout)
                    {
                        Ok(()) => {
                            // The snapshot covers everything suppressed:
                            // the client is consistent again.
                            shared.queue.reset_lag();
                            lost = false;
                        }
                        Err(_) => {
                            // The client cannot even absorb the recovery
                            // snapshot: cut it.
                            stats.slow_disconnects.fetch_add(1, Ordering::Relaxed);
                            shared.kill(Some(
                                Frame::Error {
                                    code: codes::SLOW_CONSUMER,
                                    message: NetError::SlowConsumer.to_string(),
                                }
                                .encode(),
                            ));
                            return;
                        }
                    }
                }
            }
        })
        .expect("spawn forwarder thread")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_push_drops_and_counts_past_capacity() {
        let q = OutQueue::new(2);
        assert!(q.try_push(vec![1]));
        assert!(q.try_push(vec![2]));
        assert!(!q.try_push(vec![3]));
        assert!(!q.try_push(vec![4]));
        assert_eq!(q.lagged(), 2);
        // Draining frees capacity again.
        assert_eq!(q.pop(), Some(vec![1]));
        assert!(q.try_push(vec![5]));
    }

    #[test]
    fn push_critical_times_out_on_full_queue() {
        let q = OutQueue::new(1);
        q.push_critical(vec![1], Duration::from_millis(10)).unwrap();
        match q.push_critical(vec![2], Duration::from_millis(10)) {
            Err(NetError::SlowConsumer) => {}
            other => panic!("expected SlowConsumer, got {other:?}"),
        }
    }

    #[test]
    fn kill_discards_queue_and_emits_final_frame() {
        let q = OutQueue::new(8);
        assert!(q.try_push(vec![1]));
        assert!(q.try_push(vec![2]));
        q.kill(Some(vec![9]));
        assert!(!q.try_push(vec![3]));
        assert!(matches!(
            q.push_critical(vec![4], Duration::from_millis(5)),
            Err(NetError::Closed)
        ));
        assert_eq!(q.pop(), Some(vec![9]));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_unblocks_on_concurrent_push() {
        let q = Arc::new(OutQueue::new(4));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop());
        std::thread::sleep(Duration::from_millis(20));
        assert!(q.try_push(vec![7]));
        assert_eq!(h.join().unwrap(), Some(vec![7]));
    }
}
