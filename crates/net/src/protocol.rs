//! Frame types of the TeNDaX wire protocol and their binary codec.
//!
//! One TCP connection carries a sequence of frames (see
//! [`crate::wire`] for the byte layout). The protocol is:
//!
//! ```text
//! client                              server
//!   | -- Hello{version,user,token} --> |       session hello / auth
//!   | <-- Welcome{session} ----------- |       (or Error + close)
//!   | -- Subscribe{name} ------------> |
//!   | <-- Snapshot{doc,ts,chars} ----- |       full chain incl. tombstones
//!   | -- Edit{req,doc,op} -----------> |
//!   | <-- EditOk{req,op,ts} ---------- |       (or EditRejected{req})
//!   | <-- Event{...} ----------------- |       committed-op broadcast, pushed
//!   | -- Awareness{doc,cursor,sel} --> |
//!   | -- PresenceQuery{doc} ---------> |
//!   | <-- Presence{doc,entries} ------ |
//!   | -- Ping{nonce} ----------------> |
//!   | <-- Pong{nonce} ---------------- |
//!   | -- Resync{doc} ----------------> |
//!   | <-- Snapshot{doc,ts,chars} ----- |       lag recovery
//!   | -- Unsubscribe{doc} / Bye -----> |
//! ```
//!
//! Decoding is total: any byte sequence either yields a frame or a
//! typed [`NetError`] — malformed input from the network can never
//! panic the process.

use tendax_collab::{DocEvent, Presence, SessionId};
use tendax_text::{CharId, DocId, Effect, OpId, StyleId, UserId};

use crate::error::{NetError, Result};
use crate::wire::{PayloadReader, PayloadWriter};

/// Protocol version sent in `Hello`; the server rejects a mismatch.
pub const PROTOCOL_VERSION: u16 = 1;

/// One character of a document snapshot (tombstones included).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireChar {
    pub id: u64,
    pub ch: char,
    pub deleted: bool,
    pub style: u64,
}

/// A committed operation on the wire — `DocEvent`, flattened to ids.
#[derive(Debug, Clone, PartialEq)]
pub struct WireEvent {
    pub doc: u64,
    pub op: u64,
    pub commit_ts: u64,
    pub user: u64,
    pub origin: u64,
    pub kind: String,
    pub effects: Vec<Effect>,
}

impl From<&DocEvent> for WireEvent {
    fn from(ev: &DocEvent) -> Self {
        WireEvent {
            doc: ev.doc.0,
            op: ev.op.0,
            commit_ts: ev.commit_ts,
            user: ev.user.0,
            origin: ev.origin.0,
            kind: ev.kind.clone(),
            effects: ev.effects.clone(),
        }
    }
}

impl From<WireEvent> for DocEvent {
    fn from(ev: WireEvent) -> Self {
        DocEvent {
            doc: DocId(ev.doc),
            op: OpId(ev.op),
            commit_ts: ev.commit_ts,
            user: UserId(ev.user),
            origin: SessionId(ev.origin),
            kind: ev.kind,
            effects: ev.effects,
        }
    }
}

/// One session's presence on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WirePresence {
    pub session: u64,
    pub user: u64,
    pub user_name: String,
    pub platform: String,
    pub doc: Option<u64>,
    pub cursor: Option<u64>,
    pub selection: Option<(u64, u64)>,
    pub last_active: i64,
}

impl From<&Presence> for WirePresence {
    fn from(p: &Presence) -> Self {
        WirePresence {
            session: p.session.0,
            user: p.user.0,
            user_name: p.user_name.clone(),
            platform: p.platform.to_string(),
            doc: p.doc.map(|d| d.0),
            cursor: p.cursor.map(|c| c as u64),
            selection: p.selection.map(|(a, b)| (a as u64, b as u64)),
            last_active: p.last_active,
        }
    }
}

/// An edit submitted over the wire. Positions address the client's view
/// at send time; the server re-validates against its current state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EditOp {
    Insert { pos: u64, text: String },
    Delete { pos: u64, len: u64 },
}

/// Every frame of the protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    Hello {
        version: u16,
        user: String,
        platform: String,
        token: String,
    },
    Welcome {
        session: u64,
    },
    Error {
        code: u16,
        message: String,
    },
    Subscribe {
        name: String,
    },
    Snapshot {
        doc: u64,
        synced_ts: u64,
        chars: Vec<WireChar>,
    },
    Unsubscribe {
        doc: u64,
    },
    Edit {
        request: u64,
        doc: u64,
        op: EditOp,
    },
    EditOk {
        request: u64,
        op: u64,
        commit_ts: u64,
    },
    EditRejected {
        request: u64,
        message: String,
    },
    Event(WireEvent),
    Awareness {
        doc: u64,
        cursor: Option<u64>,
        selection: Option<(u64, u64)>,
    },
    PresenceQuery {
        doc: u64,
    },
    Presence {
        doc: u64,
        entries: Vec<WirePresence>,
    },
    Ping {
        nonce: u64,
    },
    Pong {
        nonce: u64,
    },
    Resync {
        doc: u64,
    },
    Bye,
}

// Frame tags. Gaps are reserved for future frames; an unknown tag is a
// typed decode error, not a crash.
const TAG_HELLO: u8 = 0x01;
const TAG_WELCOME: u8 = 0x02;
const TAG_ERROR: u8 = 0x03;
const TAG_SUBSCRIBE: u8 = 0x04;
const TAG_SNAPSHOT: u8 = 0x05;
const TAG_UNSUBSCRIBE: u8 = 0x06;
const TAG_EDIT: u8 = 0x07;
const TAG_EDIT_OK: u8 = 0x08;
const TAG_EDIT_REJECTED: u8 = 0x09;
const TAG_EVENT: u8 = 0x0A;
const TAG_AWARENESS: u8 = 0x0B;
const TAG_PRESENCE_QUERY: u8 = 0x0C;
const TAG_PRESENCE: u8 = 0x0D;
const TAG_PING: u8 = 0x0E;
const TAG_PONG: u8 = 0x0F;
const TAG_RESYNC: u8 = 0x10;
const TAG_BYE: u8 = 0x11;

const EFFECT_INSERT: u8 = 0;
const EFFECT_DELETE: u8 = 1;
const EFFECT_UNDELETE: u8 = 2;
const EFFECT_SET_STYLE: u8 = 3;

const EDIT_INSERT: u8 = 0;
const EDIT_DELETE: u8 = 1;

fn write_effect(w: &mut PayloadWriter, e: &Effect) {
    match e {
        Effect::Insert {
            char,
            prev,
            ch,
            author,
            ts,
            style,
            src_doc,
            src_char,
            external,
        } => {
            w.u8(EFFECT_INSERT);
            w.u64(char.0);
            w.opt_u64(prev.map(|p| p.0));
            w.chr(*ch);
            w.u64(author.0);
            w.i64(*ts);
            w.u64(style.0);
            w.u64(src_doc.0);
            w.u64(src_char.0);
            w.opt_str(external.as_deref());
        }
        Effect::Delete { char, by, ts } => {
            w.u8(EFFECT_DELETE);
            w.u64(char.0);
            w.u64(by.0);
            w.i64(*ts);
        }
        Effect::Undelete { char } => {
            w.u8(EFFECT_UNDELETE);
            w.u64(char.0);
        }
        Effect::SetStyle { char, old, new } => {
            w.u8(EFFECT_SET_STYLE);
            w.u64(char.0);
            w.u64(old.0);
            w.u64(new.0);
        }
    }
}

fn read_effect(r: &mut PayloadReader<'_>) -> Result<Effect> {
    match r.u8()? {
        EFFECT_INSERT => Ok(Effect::Insert {
            char: CharId(r.u64()?),
            prev: r.opt_u64()?.map(CharId),
            ch: r.chr()?,
            author: UserId(r.u64()?),
            ts: r.i64()?,
            style: StyleId(r.u64()?),
            src_doc: DocId(r.u64()?),
            src_char: CharId(r.u64()?),
            external: r.opt_str()?,
        }),
        EFFECT_DELETE => Ok(Effect::Delete {
            char: CharId(r.u64()?),
            by: UserId(r.u64()?),
            ts: r.i64()?,
        }),
        EFFECT_UNDELETE => Ok(Effect::Undelete {
            char: CharId(r.u64()?),
        }),
        EFFECT_SET_STYLE => Ok(Effect::SetStyle {
            char: CharId(r.u64()?),
            old: StyleId(r.u64()?),
            new: StyleId(r.u64()?),
        }),
        t => Err(NetError::BadPayload {
            tag: TAG_EVENT,
            reason: format!("unknown effect tag {t}"),
        }),
    }
}

fn write_opt_pair(w: &mut PayloadWriter, v: Option<(u64, u64)>) {
    match v {
        None => w.u8(0),
        Some((a, b)) => {
            w.u8(1);
            w.u64(a);
            w.u64(b);
        }
    }
}

fn read_opt_pair(r: &mut PayloadReader<'_>, tag: u8) -> Result<Option<(u64, u64)>> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some((r.u64()?, r.u64()?))),
        b => Err(NetError::BadPayload {
            tag,
            reason: format!("option byte {b}"),
        }),
    }
}

impl Frame {
    /// The frame's wire tag.
    pub fn tag(&self) -> u8 {
        match self {
            Frame::Hello { .. } => TAG_HELLO,
            Frame::Welcome { .. } => TAG_WELCOME,
            Frame::Error { .. } => TAG_ERROR,
            Frame::Subscribe { .. } => TAG_SUBSCRIBE,
            Frame::Snapshot { .. } => TAG_SNAPSHOT,
            Frame::Unsubscribe { .. } => TAG_UNSUBSCRIBE,
            Frame::Edit { .. } => TAG_EDIT,
            Frame::EditOk { .. } => TAG_EDIT_OK,
            Frame::EditRejected { .. } => TAG_EDIT_REJECTED,
            Frame::Event(_) => TAG_EVENT,
            Frame::Awareness { .. } => TAG_AWARENESS,
            Frame::PresenceQuery { .. } => TAG_PRESENCE_QUERY,
            Frame::Presence { .. } => TAG_PRESENCE,
            Frame::Ping { .. } => TAG_PING,
            Frame::Pong { .. } => TAG_PONG,
            Frame::Resync { .. } => TAG_RESYNC,
            Frame::Bye => TAG_BYE,
        }
    }

    /// Encode to a complete wire frame (`[len][tag][payload]`).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = PayloadWriter::new();
        match self {
            Frame::Hello {
                version,
                user,
                platform,
                token,
            } => {
                w.u16(*version);
                w.str(user);
                w.str(platform);
                w.str(token);
            }
            Frame::Welcome { session } => w.u64(*session),
            Frame::Error { code, message } => {
                w.u16(*code);
                w.str(message);
            }
            Frame::Subscribe { name } => w.str(name),
            Frame::Snapshot {
                doc,
                synced_ts,
                chars,
            } => {
                w.u64(*doc);
                w.u64(*synced_ts);
                w.u32(chars.len() as u32);
                for c in chars {
                    w.u64(c.id);
                    w.chr(c.ch);
                    w.bool(c.deleted);
                    w.u64(c.style);
                }
            }
            Frame::Unsubscribe { doc } => w.u64(*doc),
            Frame::Edit { request, doc, op } => {
                w.u64(*request);
                w.u64(*doc);
                match op {
                    EditOp::Insert { pos, text } => {
                        w.u8(EDIT_INSERT);
                        w.u64(*pos);
                        w.str(text);
                    }
                    EditOp::Delete { pos, len } => {
                        w.u8(EDIT_DELETE);
                        w.u64(*pos);
                        w.u64(*len);
                    }
                }
            }
            Frame::EditOk {
                request,
                op,
                commit_ts,
            } => {
                w.u64(*request);
                w.u64(*op);
                w.u64(*commit_ts);
            }
            Frame::EditRejected { request, message } => {
                w.u64(*request);
                w.str(message);
            }
            Frame::Event(ev) => {
                w.u64(ev.doc);
                w.u64(ev.op);
                w.u64(ev.commit_ts);
                w.u64(ev.user);
                w.u64(ev.origin);
                w.str(&ev.kind);
                w.u32(ev.effects.len() as u32);
                for e in &ev.effects {
                    write_effect(&mut w, e);
                }
            }
            Frame::Awareness {
                doc,
                cursor,
                selection,
            } => {
                w.u64(*doc);
                w.opt_u64(*cursor);
                write_opt_pair(&mut w, *selection);
            }
            Frame::PresenceQuery { doc } => w.u64(*doc),
            Frame::Presence { doc, entries } => {
                w.u64(*doc);
                w.u32(entries.len() as u32);
                for p in entries {
                    w.u64(p.session);
                    w.u64(p.user);
                    w.str(&p.user_name);
                    w.str(&p.platform);
                    w.opt_u64(p.doc);
                    w.opt_u64(p.cursor);
                    write_opt_pair(&mut w, p.selection);
                    w.i64(p.last_active);
                }
            }
            Frame::Ping { nonce } => w.u64(*nonce),
            Frame::Pong { nonce } => w.u64(*nonce),
            Frame::Resync { doc } => w.u64(*doc),
            Frame::Bye => {}
        }
        crate::wire::encode_frame(self.tag(), &w.into_bytes())
    }

    /// Decode a frame from its tag and payload bytes.
    pub fn decode(tag: u8, payload: &[u8]) -> Result<Frame> {
        let mut r = PayloadReader::new(tag, payload);
        let frame = match tag {
            TAG_HELLO => Frame::Hello {
                version: r.u16()?,
                user: r.str()?,
                platform: r.str()?,
                token: r.str()?,
            },
            TAG_WELCOME => Frame::Welcome { session: r.u64()? },
            TAG_ERROR => Frame::Error {
                code: r.u16()?,
                message: r.str()?,
            },
            TAG_SUBSCRIBE => Frame::Subscribe { name: r.str()? },
            TAG_SNAPSHOT => {
                let doc = r.u64()?;
                let synced_ts = r.u64()?;
                let n = r.u32()? as usize;
                // Bound the pre-allocation by what the payload could
                // actually hold (17 bytes per char minimum).
                let mut chars = Vec::with_capacity(n.min(r.remaining() / 17 + 1));
                for _ in 0..n {
                    chars.push(WireChar {
                        id: r.u64()?,
                        ch: r.chr()?,
                        deleted: r.bool()?,
                        style: r.u64()?,
                    });
                }
                Frame::Snapshot {
                    doc,
                    synced_ts,
                    chars,
                }
            }
            TAG_UNSUBSCRIBE => Frame::Unsubscribe { doc: r.u64()? },
            TAG_EDIT => {
                let request = r.u64()?;
                let doc = r.u64()?;
                let op = match r.u8()? {
                    EDIT_INSERT => EditOp::Insert {
                        pos: r.u64()?,
                        text: r.str()?,
                    },
                    EDIT_DELETE => EditOp::Delete {
                        pos: r.u64()?,
                        len: r.u64()?,
                    },
                    t => {
                        return Err(NetError::BadPayload {
                            tag,
                            reason: format!("unknown edit op {t}"),
                        })
                    }
                };
                Frame::Edit { request, doc, op }
            }
            TAG_EDIT_OK => Frame::EditOk {
                request: r.u64()?,
                op: r.u64()?,
                commit_ts: r.u64()?,
            },
            TAG_EDIT_REJECTED => Frame::EditRejected {
                request: r.u64()?,
                message: r.str()?,
            },
            TAG_EVENT => {
                let doc = r.u64()?;
                let op = r.u64()?;
                let commit_ts = r.u64()?;
                let user = r.u64()?;
                let origin = r.u64()?;
                let kind = r.str()?;
                let n = r.u32()? as usize;
                let mut effects = Vec::with_capacity(n.min(r.remaining() / 9 + 1));
                for _ in 0..n {
                    effects.push(read_effect(&mut r)?);
                }
                Frame::Event(WireEvent {
                    doc,
                    op,
                    commit_ts,
                    user,
                    origin,
                    kind,
                    effects,
                })
            }
            TAG_AWARENESS => Frame::Awareness {
                doc: r.u64()?,
                cursor: r.opt_u64()?,
                selection: read_opt_pair(&mut r, tag)?,
            },
            TAG_PRESENCE_QUERY => Frame::PresenceQuery { doc: r.u64()? },
            TAG_PRESENCE => {
                let doc = r.u64()?;
                let n = r.u32()? as usize;
                let mut entries = Vec::with_capacity(n.min(r.remaining() / 34 + 1));
                for _ in 0..n {
                    entries.push(WirePresence {
                        session: r.u64()?,
                        user: r.u64()?,
                        user_name: r.str()?,
                        platform: r.str()?,
                        doc: r.opt_u64()?,
                        cursor: r.opt_u64()?,
                        selection: read_opt_pair(&mut r, tag)?,
                        last_active: r.i64()?,
                    });
                }
                Frame::Presence { doc, entries }
            }
            TAG_PING => Frame::Ping { nonce: r.u64()? },
            TAG_PONG => Frame::Pong { nonce: r.u64()? },
            TAG_RESYNC => Frame::Resync { doc: r.u64()? },
            TAG_BYE => Frame::Bye,
            t => return Err(NetError::UnknownTag(t)),
        };
        r.finish()?;
        Ok(frame)
    }
}
