//! The byte-level wire format: length-prefixed frames and the
//! hand-rolled payload codec.
//!
//! Frame layout (all integers little-endian):
//!
//! ```text
//! [u32 len][u8 tag][payload ...]
//!           \________len________/
//! ```
//!
//! `len` counts the tag byte plus the payload, so a frame occupies
//! `4 + len` bytes on the wire and `len >= 1` always. The maximum `len`
//! is a per-endpoint policy ([`MAX_FRAME`] by default): a larger prefix
//! is rejected *before* any buffer of that size is allocated, so a
//! corrupt or hostile peer cannot OOM the receiver with five bytes.
//!
//! Payloads are encoded with [`PayloadWriter`]/[`PayloadReader`]: fixed
//! little-endian integers, `u32`-length-prefixed UTF-8 strings, chars as
//! `u32` scalar values, and `Option<T>` as a presence byte. serde is
//! unavailable in this workspace (see `DESIGN.md` §6), so the codec is
//! hand-rolled and decoding is total: every input either decodes or
//! returns a typed [`NetError`] — it never panics.

use crate::error::{NetError, Result};

/// Default maximum frame length (tag + payload). Snapshots of large
/// documents are the biggest frames; 16 MiB ≈ a 1M-character document
/// with full tombstone history.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Builds a payload byte-by-byte.
#[derive(Debug, Default)]
pub struct PayloadWriter {
    buf: Vec<u8>,
}

impl PayloadWriter {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    pub fn chr(&mut self, c: char) {
        self.u32(c as u32);
    }

    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.u8(0),
            Some(v) => {
                self.u8(1);
                self.u64(v);
            }
        }
    }

    pub fn opt_str(&mut self, v: Option<&str>) {
        match v {
            None => self.u8(0),
            Some(s) => {
                self.u8(1);
                self.str(s);
            }
        }
    }
}

/// Decodes a payload; every accessor is bounds-checked and returns a
/// typed error on truncation or malformed content.
#[derive(Debug)]
pub struct PayloadReader<'a> {
    buf: &'a [u8],
    pos: usize,
    tag: u8,
}

impl<'a> PayloadReader<'a> {
    pub fn new(tag: u8, buf: &'a [u8]) -> Self {
        PayloadReader { buf, pos: 0, tag }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(NetError::Truncated {
                tag: self.tag,
                needed: n,
                remaining: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn bad(&self, reason: impl Into<String>) -> NetError {
        NetError::BadPayload {
            tag: self.tag,
            reason: reason.into(),
        }
    }

    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn bool(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(self.bad(format!("bool byte {b}"))),
        }
    }

    pub fn chr(&mut self) -> Result<char> {
        let v = self.u32()?;
        char::from_u32(v).ok_or_else(|| self.bad(format!("invalid char scalar {v:#x}")))
    }

    pub fn str(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        // A string cannot be longer than the bytes that remain; checking
        // first turns a hostile length into `Truncated`, not a huge
        // allocation.
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| self.bad(format!("invalid utf-8: {e}")))
    }

    pub fn opt_u64(&mut self) -> Result<Option<u64>> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            b => Err(self.bad(format!("option byte {b}"))),
        }
    }

    pub fn opt_str(&mut self) -> Result<Option<String>> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.str()?)),
            b => Err(self.bad(format!("option byte {b}"))),
        }
    }

    /// Fail if the payload has trailing bytes — a frame must decode
    /// exactly, or the stream framing is suspect.
    pub fn finish(self) -> Result<()> {
        if self.remaining() != 0 {
            return Err(NetError::BadPayload {
                tag: self.tag,
                reason: format!("{} trailing bytes", self.remaining()),
            });
        }
        Ok(())
    }
}

/// Encode one frame: `[u32 len][tag][payload]`.
pub fn encode_frame(tag: u8, payload: &[u8]) -> Vec<u8> {
    let len = 1 + payload.len() as u32;
    let mut out = Vec::with_capacity(4 + len as usize);
    out.extend_from_slice(&len.to_le_bytes());
    out.push(tag);
    out.extend_from_slice(payload);
    out
}

/// Incremental frame assembly over a byte stream.
///
/// Socket reads append whatever arrived; [`FrameBuffer::try_frame`]
/// yields complete `(tag, payload)` frames as soon as their bytes are
/// in. A read that ends mid-frame leaves the partial bytes buffered —
/// framing never desynchronizes on short reads or timeouts.
#[derive(Debug)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    start: usize,
    max_frame: u32,
}

impl Default for FrameBuffer {
    fn default() -> Self {
        Self::new(MAX_FRAME)
    }
}

impl FrameBuffer {
    pub fn new(max_frame: u32) -> Self {
        FrameBuffer {
            buf: Vec::new(),
            start: 0,
            max_frame,
        }
    }

    /// Append bytes read from the stream.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact once consumed bytes dominate, so the buffer does not
        // grow with connection lifetime.
        if self.start > 4096 && self.start * 2 > self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a complete frame.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// The next complete frame, if its bytes have all arrived.
    ///
    /// `Err` means the stream is unrecoverable (oversized or empty
    /// length prefix): the caller must drop the connection — there is no
    /// way to find the next frame boundary after a corrupt prefix.
    pub fn try_frame(&mut self) -> Result<Option<(u8, Vec<u8>)>> {
        let avail = &self.buf[self.start..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(avail[..4].try_into().unwrap());
        if len == 0 {
            return Err(NetError::EmptyFrame);
        }
        if len > self.max_frame {
            return Err(NetError::FrameTooLarge {
                len,
                max: self.max_frame,
            });
        }
        let total = 4 + len as usize;
        if avail.len() < total {
            return Ok(None);
        }
        let tag = avail[4];
        let payload = avail[5..total].to_vec();
        self.start += total;
        Ok(Some((tag, payload)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip_byte_by_byte() {
        let frame = encode_frame(0x42, b"hello");
        let mut fb = FrameBuffer::default();
        for (i, b) in frame.iter().enumerate() {
            fb.extend(&[*b]);
            let got = fb.try_frame().unwrap();
            if i + 1 < frame.len() {
                assert!(got.is_none(), "frame completed early at byte {i}");
            } else {
                assert_eq!(got, Some((0x42, b"hello".to_vec())));
            }
        }
        assert_eq!(fb.try_frame().unwrap(), None);
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocation() {
        let mut fb = FrameBuffer::new(1024);
        fb.extend(&u32::MAX.to_le_bytes());
        match fb.try_frame() {
            Err(NetError::FrameTooLarge { len, max }) => {
                assert_eq!(len, u32::MAX);
                assert_eq!(max, 1024);
            }
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn zero_length_frame_is_rejected() {
        let mut fb = FrameBuffer::default();
        fb.extend(&0u32.to_le_bytes());
        assert!(matches!(fb.try_frame(), Err(NetError::EmptyFrame)));
    }

    #[test]
    fn reader_truncation_is_typed() {
        let mut w = PayloadWriter::new();
        w.u64(7);
        let bytes = w.into_bytes();
        let mut r = PayloadReader::new(0x01, &bytes[..4]);
        assert!(matches!(r.u64(), Err(NetError::Truncated { .. })));
    }

    #[test]
    fn string_length_cannot_exceed_payload() {
        // A string claiming 1 GiB inside a 10-byte payload must fail as
        // truncated, not allocate.
        let mut w = PayloadWriter::new();
        w.u32(1 << 30);
        w.u8(b'x');
        let bytes = w.into_bytes();
        let mut r = PayloadReader::new(0x02, &bytes);
        assert!(matches!(r.str(), Err(NetError::Truncated { .. })));
    }

    #[test]
    fn invalid_utf8_and_char_are_typed() {
        let mut w = PayloadWriter::new();
        w.u32(2);
        let mut bytes = w.into_bytes();
        bytes.extend_from_slice(&[0xFF, 0xFE]);
        let mut r = PayloadReader::new(0x03, &bytes);
        assert!(matches!(r.str(), Err(NetError::BadPayload { .. })));

        let mut w = PayloadWriter::new();
        w.u32(0xD800); // surrogate: not a scalar value
        let bytes = w.into_bytes();
        let mut r = PayloadReader::new(0x03, &bytes);
        assert!(matches!(r.chr(), Err(NetError::BadPayload { .. })));
    }

    #[test]
    fn finish_rejects_trailing_bytes() {
        let mut w = PayloadWriter::new();
        w.u8(1);
        w.u8(2);
        let bytes = w.into_bytes();
        let mut r = PayloadReader::new(0x04, &bytes);
        r.u8().unwrap();
        assert!(matches!(r.finish(), Err(NetError::BadPayload { .. })));
    }

    #[test]
    fn writer_reader_roundtrip_all_primitives() {
        let mut w = PayloadWriter::new();
        w.u8(0xAB);
        w.u16(0xCDEF);
        w.u32(0xDEADBEEF);
        w.u64(u64::MAX - 1);
        w.i64(-42);
        w.bool(true);
        w.chr('𝕊');
        w.str("héllo");
        w.opt_u64(None);
        w.opt_u64(Some(9));
        w.opt_str(Some("s"));
        w.opt_str(None);
        let bytes = w.into_bytes();
        let mut r = PayloadReader::new(0x05, &bytes);
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert_eq!(r.u16().unwrap(), 0xCDEF);
        assert_eq!(r.u32().unwrap(), 0xDEADBEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.i64().unwrap(), -42);
        assert!(r.bool().unwrap());
        assert_eq!(r.chr().unwrap(), '𝕊');
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.opt_u64().unwrap(), None);
        assert_eq!(r.opt_u64().unwrap(), Some(9));
        assert_eq!(r.opt_str().unwrap(), Some("s".into()));
        assert_eq!(r.opt_str().unwrap(), None);
        r.finish().unwrap();
    }

    #[test]
    fn buffer_compaction_keeps_partial_frames() {
        let mut fb = FrameBuffer::default();
        // Push many small frames to trigger compaction, interleaved with
        // a partial frame at the end.
        for _ in 0..2000 {
            fb.extend(&encode_frame(1, b"xxxx"));
            assert!(fb.try_frame().unwrap().is_some());
        }
        let frame = encode_frame(2, b"tail");
        fb.extend(&frame[..6]);
        assert!(fb.try_frame().unwrap().is_none());
        fb.extend(&frame[6..]);
        assert_eq!(fb.try_frame().unwrap(), Some((2, b"tail".to_vec())));
    }
}
