//! # tendax-core
//!
//! The public API facade of the **TeNDaX** reproduction — "TeNDaX, a
//! Collaborative Database-Based Real-Time Editor System" (Leone,
//! Hodel-Widmer, Böhlen, Dittrich, EDBT 2006).
//!
//! A [`Tendax`] instance bundles the whole system:
//!
//! * the storage engine and the Text Native eXtension ([`tendax_text`]),
//! * the collaboration server with sessions, awareness and the
//!   simulated-LAN bus ([`tendax_collab`]),
//! * dynamic in-document business processes ([`tendax_process`]),
//! * metadata services: dynamic folders, data lineage, search & ranking,
//!   visual/text mining ([`tendax_meta`]).
//!
//! ## Quick example
//!
//! ```
//! use tendax_core::{Platform, Tendax};
//!
//! let tx = Tendax::in_memory().unwrap();
//! let alice = tx.create_user("alice").unwrap();
//! tx.create_user("bob").unwrap();
//! tx.create_document("minutes", alice).unwrap();
//!
//! // Two editors, different platforms, one document.
//! let sa = tx.connect("alice", Platform::WindowsXp).unwrap();
//! let sb = tx.connect("bob", Platform::Linux).unwrap();
//! let mut da = sa.open("minutes").unwrap();
//! let mut db = sb.open("minutes").unwrap();
//!
//! da.type_text(0, "Agenda: demo").unwrap();
//! db.sync();
//! assert_eq!(db.text(), "Agenda: demo");
//! ```

use std::path::Path;

use tendax_collab::CollabServer;
use tendax_process::ProcessEngine;
use tendax_storage::Database;
use tendax_text::TextDb;

// Re-export the full public surface under one roof.
pub use tendax_collab::{
    AwarenessRegistry, BusPolicy, DocEvent, EditorDoc, EditorSession, EventSource, LanBus,
    Platform, Presence, SessionId, Transport, TransportStats,
};
pub use tendax_meta::{
    activity_timeline, char_provenance, collaboration_graph, top_terms, DocFeatures, DocumentSpace,
    DynamicFolders, Folder, FolderChange, FolderId, FolderRule, FolderSet, InvertedIndex,
    LineageEdge, LineageGraph, LineageNode, ProvenanceHop, RankBy, SearchEngine, SearchFilter,
    SearchHit, SearchQuery, SpacePoint, TermMode, WorkspaceReport, FEATURE_NAMES,
};
pub use tendax_process::{Assignee, Task, TaskId, TaskLogEntry, TaskSpec, TaskState};
pub use tendax_storage::{ClockMode, DurabilityLevel, Options, Stats};
pub use tendax_text::{
    CharId, CharMeta, Clip, DocHandle, DocId, DocInfo, DocStats, EditReceipt, Effect, NoteId,
    ObjectId, OpId, Permission, Principal, Provenance, Result, RoleId, StructId, StyleId,
    TextError, UserId, VersionId,
};

/// The assembled TeNDaX system.
#[derive(Debug, Clone)]
pub struct Tendax {
    tdb: TextDb,
    server: CollabServer,
    process: ProcessEngine,
    folders: DynamicFolders,
}

impl Tendax {
    /// A fresh in-memory instance (demos, tests, benches).
    pub fn in_memory() -> Result<Tendax> {
        Self::from_database(Database::open_in_memory())
    }

    /// A durable instance whose write-ahead log lives at `path`.
    pub fn open(path: impl AsRef<Path>, options: Options) -> Result<Tendax> {
        Self::from_database(Database::open(path, options)?)
    }

    /// Assemble the system on an existing database (installs all schemas
    /// idempotently — reopening a durable database adopts its tables).
    pub fn from_database(db: Database) -> Result<Tendax> {
        let tdb = TextDb::init(db)?;
        let process = ProcessEngine::init(tdb.clone())?;
        let folders = DynamicFolders::init(tdb.clone())?;
        let server = CollabServer::new(tdb.clone());
        Ok(Tendax {
            tdb,
            server,
            process,
            folders,
        })
    }

    // ------------------------------------------------------------- access

    /// The text extension (documents, users, editing, security).
    pub fn textdb(&self) -> &TextDb {
        &self.tdb
    }

    /// The collaboration server (sessions, awareness, bus).
    pub fn server(&self) -> &CollabServer {
        &self.server
    }

    /// The in-document workflow engine.
    pub fn process(&self) -> &ProcessEngine {
        &self.process
    }

    /// The dynamic-folder engine.
    pub fn folders(&self) -> &DynamicFolders {
        &self.folders
    }

    /// Build a content+metadata search engine over the current corpus.
    pub fn search(&self) -> Result<SearchEngine> {
        SearchEngine::build(&self.tdb)
    }

    /// Build the data-lineage graph (Figure 1 of the paper).
    pub fn lineage(&self) -> Result<LineageGraph> {
        LineageGraph::build(&self.tdb)
    }

    /// Build the visual-mining document space (Figure 2 of the paper).
    pub fn document_space(&self, clusters: usize) -> Result<DocumentSpace> {
        DocumentSpace::build(&self.tdb, clusters)
    }

    /// Build the workspace management report.
    pub fn report(&self) -> Result<WorkspaceReport> {
        WorkspaceReport::build(&self.tdb)
    }

    /// Storage-engine statistics.
    pub fn stats(&self) -> Stats {
        self.tdb.database().stats()
    }

    // -------------------------------------------------------- conveniences

    pub fn create_user(&self, name: &str) -> Result<UserId> {
        self.tdb.create_user(name)
    }

    pub fn create_document(&self, name: &str, creator: UserId) -> Result<DocId> {
        self.tdb.create_document(name, creator)
    }

    /// Connect an editor session for an existing user.
    pub fn connect(&self, user_name: &str, platform: Platform) -> Result<EditorSession> {
        self.server.connect(user_name, platform)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_stack_assembles() {
        let tx = Tendax::in_memory().unwrap();
        let alice = tx.create_user("alice").unwrap();
        let doc = tx.create_document("d", alice).unwrap();
        let session = tx.connect("alice", Platform::MacOsX).unwrap();
        let mut ed = session.open("d").unwrap();
        ed.type_text(0, "hello").unwrap();
        assert_eq!(ed.text(), "hello");

        // Workflow on the same document.
        let task = tx
            .process()
            .define_task(doc, alice, TaskSpec::new("review", Assignee::User(alice)))
            .unwrap();
        tx.process().complete(task, alice, "ok").unwrap();

        // Metadata services see the document.
        let hits = tx
            .search()
            .unwrap()
            .search(&SearchQuery::terms("hello"))
            .unwrap();
        assert_eq!(hits.len(), 1);
        let space = tx.document_space(1).unwrap();
        assert_eq!(space.points.len(), 1);
        assert!(tx.stats().commits > 0);
    }

    #[test]
    fn durable_instance_reopens() {
        let dir = std::env::temp_dir().join(format!("tendax-core-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("core-reopen.wal");
        let _ = std::fs::remove_file(&path);
        {
            let tx = Tendax::open(&path, Options::default()).unwrap();
            let u = tx.create_user("alice").unwrap();
            tx.create_document("persisted", u).unwrap();
            let s = tx.connect("alice", Platform::Linux).unwrap();
            let mut d = s.open("persisted").unwrap();
            d.type_text(0, "durable text").unwrap();
        }
        let tx = Tendax::open(&path, Options::default()).unwrap();
        let u = tx.textdb().user_by_name("alice").unwrap();
        let doc = tx.textdb().document_by_name("persisted").unwrap();
        let h = tx.textdb().open(doc, u).unwrap();
        assert_eq!(h.text(), "durable text");
    }
}
