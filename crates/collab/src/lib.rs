//! # tendax-collab
//!
//! The collaboration layer of the TeNDaX reproduction: an in-process
//! server, editor sessions bound to users and platforms, a simulated-LAN
//! broadcast bus with configurable latency, and awareness (presence,
//! cursors, selections).
//!
//! **Substitution note** (see `DESIGN.md`): the EDBT demo ran GUI editors
//! on Windows XP, Linux and Mac OS X machines connected over a LAN. All
//! demoed features are API calls that issue database transactions — the
//! GUI is only a renderer — so this crate drives *headless* editors over
//! an in-process bus with simulated latency, exercising exactly the same
//! transaction paths deterministically.
//!
//! ## Quick example
//!
//! ```
//! use tendax_collab::{CollabServer, Platform};
//! use tendax_text::TextDb;
//!
//! let tdb = TextDb::in_memory();
//! let alice = tdb.create_user("alice").unwrap();
//! tdb.create_user("bob").unwrap();
//! tdb.create_document("minutes", alice).unwrap();
//!
//! let server = CollabServer::new(tdb);
//! let sa = server.connect("alice", Platform::WindowsXp).unwrap();
//! let sb = server.connect("bob", Platform::MacOsX).unwrap();
//!
//! let mut da = sa.open("minutes").unwrap();
//! let mut db = sb.open("minutes").unwrap();
//! da.type_text(0, "Agenda").unwrap();
//! db.sync();
//! assert_eq!(db.text(), "Agenda");
//! ```

pub mod awareness;
pub mod bus;
pub mod server;
pub mod session;
pub mod transport;

pub use awareness::{AwarenessRegistry, Platform, Presence};
pub use bus::{BusPolicy, DocEvent, LanBus, SessionId, Subscription};
pub use server::CollabServer;
pub use session::{EditorDoc, EditorSession, EditorStats};
pub use transport::{EventSource, Transport, TransportStats};
