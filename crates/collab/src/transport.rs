//! The transport abstraction of the collaboration layer.
//!
//! Committed operations reach other editors through a [`Transport`]: the
//! in-process [`crate::bus::LanBus`] is one implementation (the EDBT
//! demo's simulated LAN), and `tendax-net`'s TCP server pumps the same
//! event stream over real sockets. Everything above this trait —
//! sessions, awareness, the editor retry protocol — is transport
//! agnostic, which is what lets one `CollabServer` serve in-process
//! editors and remote connections at the same time.

use std::sync::Arc;
use std::time::Duration;

use tendax_text::DocId;

use crate::bus::DocEvent;

/// Delivery/backpressure counters of a transport, cumulative since
/// creation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Events handed to `publish`.
    pub published: u64,
    /// Per-subscriber deliveries (one publish to N subscribers counts N).
    pub delivered: u64,
    /// Deliveries skipped because a subscriber's queue was full.
    pub dropped: u64,
    /// Subscribers evicted for lagging past the policy limit.
    pub evicted: u64,
}

/// A broadcast channel for committed document events.
///
/// Implementations must be cheap to share (`Arc` inside) and must never
/// block `publish` on a slow consumer: bounded per-subscriber queues with
/// an explicit drop/evict policy are the contract, not backpressure onto
/// the committer.
pub trait Transport: Send + Sync + std::fmt::Debug {
    /// Subscribe to one document's event stream with a simulated one-way
    /// latency (`Duration::ZERO` for real transports). Dropping the
    /// returned source unsubscribes.
    fn connect(&self, doc: DocId, latency: Duration) -> Box<dyn EventSource>;

    /// Broadcast one committed operation to all subscribers of its
    /// document.
    fn publish(&self, event: DocEvent);

    /// Number of live subscriptions.
    fn subscriber_count(&self) -> usize;

    /// Cumulative delivery/backpressure counters.
    fn stats(&self) -> TransportStats;

    /// Register a callback invoked after every `publish` (any document).
    /// Lets a consumer that multiplexes many subscriptions over few
    /// threads (e.g. a forwarder pool) park between events and still
    /// wake immediately on commit instead of polling. The callback must
    /// be fast and non-blocking; returning `false` deregisters it.
    /// Transports without a notification path may ignore this (the
    /// default), in which case consumers fall back to polling.
    fn register_publish_hook(&self, _hook: Box<dyn Fn() -> bool + Send + Sync>) {}

    /// Whether [`Transport::register_publish_hook`] actually delivers
    /// notifications. Consumers that multiplex subscriptions use this
    /// to choose between pure event-driven parking (`true`) and a
    /// polling fallback tick (`false`, the default — matching the
    /// default no-op hook registration).
    fn supports_publish_hook(&self) -> bool {
        false
    }
}

/// The receiving end of one document subscription.
pub trait EventSource: Send + std::fmt::Debug {
    /// Deliverable events, in publish order. Non-blocking.
    fn poll(&mut self) -> Vec<Arc<DocEvent>>;

    /// Wait until at least one event is deliverable or the timeout
    /// expires, then poll.
    fn poll_timeout(&mut self, timeout: Duration) -> Vec<Arc<DocEvent>>;

    /// Events queued but not yet deliverable.
    fn in_flight(&mut self) -> usize;

    /// True once the transport evicted this subscriber for lagging: the
    /// stream has a hole and the consumer must resynchronize from the
    /// database (refresh / snapshot) and re-subscribe.
    fn lagged_out(&self) -> bool;

    /// The document this source is subscribed to.
    fn doc(&self) -> DocId;

    /// The simulated one-way latency of this subscription.
    fn latency(&self) -> Duration;
}
