//! Awareness: who is online, on which document, where their cursor is.
//!
//! TeNDaX lists "awareness" among the collaboration features the database
//! approach provides for free: because sessions and cursors are just
//! shared state, every editor can see everyone else's presence. The
//! registry is process-local shared state owned by the
//! [`crate::server::CollabServer`].

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use tendax_text::{DocId, UserId};

use crate::bus::SessionId;

/// The operating system an editor runs on — the demo's "LAN-party"
/// featured all three.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Platform {
    WindowsXp,
    Linux,
    MacOsX,
    Other(String),
}

impl std::fmt::Display for Platform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Platform::WindowsXp => write!(f, "Windows XP"),
            Platform::Linux => write!(f, "Linux"),
            Platform::MacOsX => write!(f, "Mac OS X"),
            Platform::Other(s) => write!(f, "{s}"),
        }
    }
}

/// One session's presence information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Presence {
    pub session: SessionId,
    pub user: UserId,
    pub user_name: String,
    pub platform: Platform,
    /// The document currently focused, if any.
    pub doc: Option<DocId>,
    /// Cursor position within that document.
    pub cursor: Option<usize>,
    /// Selection range within that document.
    pub selection: Option<(usize, usize)>,
    /// Engine-clock timestamp of the last action.
    pub last_active: i64,
}

/// Shared presence registry.
#[derive(Debug, Clone, Default)]
pub struct AwarenessRegistry {
    inner: Arc<Mutex<HashMap<SessionId, Presence>>>,
}

impl AwarenessRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn register(&self, presence: Presence) {
        self.inner.lock().insert(presence.session, presence);
    }

    pub fn remove(&self, session: SessionId) {
        self.inner.lock().remove(&session);
    }

    /// Mutate a session's presence in place (no-op if disconnected).
    ///
    /// Every presence mutation is activity: `last_active` is bumped to
    /// `now` unconditionally, so an actively editing session (cursor
    /// moves, doc opens, selections) can never be reaped by
    /// [`AwarenessRegistry::prune_idle`] while it is in use. (It used to
    /// be the callers' job to remember the bump; an audit found most
    /// mutation sites forgot, which let the idle sweep prune live
    /// editors.)
    pub fn update(&self, session: SessionId, now: i64, f: impl FnOnce(&mut Presence)) {
        if let Some(p) = self.inner.lock().get_mut(&session) {
            f(p);
            p.last_active = p.last_active.max(now);
        }
    }

    /// Everyone online, ordered by session id.
    pub fn all(&self) -> Vec<Presence> {
        let mut v: Vec<Presence> = self.inner.lock().values().cloned().collect();
        v.sort_by_key(|p| p.session);
        v
    }

    /// Sessions currently focused on `doc`.
    pub fn on_doc(&self, doc: DocId) -> Vec<Presence> {
        let mut v: Vec<Presence> = self
            .inner
            .lock()
            .values()
            .filter(|p| p.doc == Some(doc))
            .cloned()
            .collect();
        v.sort_by_key(|p| p.session);
        v
    }

    /// Remove sessions whose last activity is older than `before`
    /// (engine-clock timestamp). Returns the sessions pruned — a server
    /// housekeeping sweep for editors that vanished without disconnecting.
    pub fn prune_idle(&self, before: i64) -> Vec<SessionId> {
        let mut inner = self.inner.lock();
        let dead: Vec<SessionId> = inner
            .values()
            .filter(|p| p.last_active < before)
            .map(|p| p.session)
            .collect();
        for s in &dead {
            inner.remove(s);
        }
        dead
    }

    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn presence(session: u64, doc: Option<u64>) -> Presence {
        Presence {
            session: SessionId(session),
            user: UserId(session),
            user_name: format!("user{session}"),
            platform: Platform::Linux,
            doc: doc.map(DocId),
            cursor: None,
            selection: None,
            last_active: 0,
        }
    }

    #[test]
    fn register_update_remove() {
        let reg = AwarenessRegistry::new();
        reg.register(presence(1, Some(5)));
        reg.register(presence(2, None));
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.on_doc(DocId(5)).len(), 1);

        reg.update(SessionId(2), 1, |p| {
            p.doc = Some(DocId(5));
            p.cursor = Some(3);
        });
        assert_eq!(reg.on_doc(DocId(5)).len(), 2);
        let all = reg.all();
        assert_eq!(all[1].cursor, Some(3));

        reg.remove(SessionId(1));
        assert_eq!(reg.len(), 1);
        // Updating a removed session is a no-op.
        reg.update(SessionId(1), 2, |p| p.cursor = Some(9));
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn prune_idle_sweeps_stale_sessions() {
        let reg = AwarenessRegistry::new();
        let mut p1 = presence(1, None);
        p1.last_active = 10;
        let mut p2 = presence(2, None);
        p2.last_active = 100;
        reg.register(p1);
        reg.register(p2);
        let dead = reg.prune_idle(50);
        assert_eq!(dead, vec![SessionId(1)]);
        assert_eq!(reg.len(), 1);
        assert!(reg.prune_idle(50).is_empty());
    }

    /// Regression (active editor pruned): presence mutations used to
    /// leave `last_active` untouched, so a session whose user was moving
    /// the cursor the whole time could still fall behind the idle
    /// horizon and be reaped. Every `update` now refreshes the clock.
    #[test]
    fn prune_spares_actively_updating_session() {
        let reg = AwarenessRegistry::new();
        let mut active = presence(1, Some(5));
        active.last_active = 10;
        let mut idle = presence(2, None);
        idle.last_active = 10;
        reg.register(active);
        reg.register(idle);
        // Session 1 keeps editing: cursor moves at ticks 20, 30, 40.
        for now in [20, 30, 40] {
            reg.update(SessionId(1), now, |p| p.cursor = Some(now as usize));
        }
        // Sweep with a horizon past the registration time but before the
        // last activity: the active session must survive, the idle one
        // must go.
        let dead = reg.prune_idle(35);
        assert_eq!(dead, vec![SessionId(2)]);
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.all()[0].session, SessionId(1));
    }

    /// `update` never rewinds the clock: a stale `now` (e.g. a reordered
    /// caller) cannot make a session look older than it is.
    #[test]
    fn update_does_not_rewind_last_active() {
        let reg = AwarenessRegistry::new();
        let mut p = presence(1, None);
        p.last_active = 50;
        reg.register(p);
        reg.update(SessionId(1), 20, |p| p.cursor = Some(1));
        assert_eq!(reg.all()[0].last_active, 50);
        reg.update(SessionId(1), 60, |p| p.cursor = Some(2));
        assert_eq!(reg.all()[0].last_active, 60);
    }

    #[test]
    fn platform_display() {
        assert_eq!(Platform::WindowsXp.to_string(), "Windows XP");
        assert_eq!(Platform::MacOsX.to_string(), "Mac OS X");
        assert_eq!(Platform::Other("BeOS".into()).to_string(), "BeOS");
    }
}
