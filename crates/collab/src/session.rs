//! Editor sessions and open collaborative documents.
//!
//! [`EditorSession`] models one running editor (one user, one platform,
//! one simulated network link). [`EditorDoc`] is a document opened in
//! that editor: it wraps a [`DocHandle`], subscribes to the document's
//! event stream, publishes its own committed operations, and transparently
//! retries edits that lose an optimistic-concurrency race — exactly the
//! behaviour the TeNDaX editor exhibits when several people type into the
//! same paragraph.

use std::sync::Arc;
use std::time::Duration;

use rand::{rngs::SmallRng, Rng, SeedableRng};
use tendax_text::{Clip, DocHandle, DocId, EditReceipt, Result, StyleId, TextError, UserId};

use crate::awareness::Platform;
use crate::bus::{DocEvent, SessionId};
use crate::server::CollabServer;
use crate::transport::EventSource;

/// How many times an edit is retried after losing a commit race before
/// [`TextError::RetriesExhausted`] is surfaced. Each retry re-syncs from
/// the bus and database, after a jittered exponential backoff.
const EDIT_RETRIES: usize = 16;

/// Backoff ceiling before retry 1, doubling each retry up to
/// `BACKOFF_BASE_US << BACKOFF_MAX_SHIFT` (20µs … 2.56ms).
const BACKOFF_BASE_US: u64 = 20;
const BACKOFF_MAX_SHIFT: u32 = 7;

/// Jittered exponential backoff delay before retry `attempt` (≥ 1).
///
/// N sessions hammering one hot position re-collide in lockstep if they
/// all retry immediately; the jitter decorrelates them. The jitter is
/// *deterministic* — seeded from the session id and attempt number, no
/// ambient clock or process-global RNG — so retry schedules are
/// reproducible in tests. Uniform in `[ceiling/2, ceiling]`, ceiling
/// doubling per attempt and capped.
fn backoff_delay(session: SessionId, attempt: usize) -> Duration {
    debug_assert!(attempt >= 1);
    let ceil_us = BACKOFF_BASE_US << (attempt as u32 - 1).min(BACKOFF_MAX_SHIFT);
    let seed = session.0 ^ (attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut rng = SmallRng::seed_from_u64(seed);
    Duration::from_micros(rng.gen_range(ceil_us / 2..=ceil_us))
}

/// One running editor instance.
#[derive(Debug)]
pub struct EditorSession {
    server: CollabServer,
    id: SessionId,
    user: UserId,
    user_name: String,
    platform: Platform,
    latency: Duration,
}

impl EditorSession {
    pub(crate) fn new(
        server: CollabServer,
        id: SessionId,
        user: UserId,
        user_name: String,
        platform: Platform,
        latency: Duration,
    ) -> Self {
        EditorSession {
            server,
            id,
            user,
            user_name,
            platform,
            latency,
        }
    }

    pub fn id(&self) -> SessionId {
        self.id
    }

    pub fn user(&self) -> UserId {
        self.user
    }

    pub fn user_name(&self) -> &str {
        &self.user_name
    }

    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    pub fn server(&self) -> &CollabServer {
        &self.server
    }

    /// Open a document by name.
    pub fn open(&self, doc_name: &str) -> Result<EditorDoc> {
        let doc = self.server.textdb().document_by_name(doc_name)?;
        self.open_id(doc)
    }

    /// Open a document by id.
    pub fn open_id(&self, doc: DocId) -> Result<EditorDoc> {
        let handle = self.server.textdb().open(doc, self.user)?;
        let sub = self.server.transport().connect(doc, self.latency);
        self.server.presence_update(self.id, |p| {
            p.doc = Some(doc);
            p.cursor = Some(0);
        });
        Ok(EditorDoc {
            handle,
            sub,
            server: self.server.clone(),
            session: self.id,
            cursor: 0,
            cursor_anchor: None,
            reorder: Vec::new(),
            stats: EditorStats::default(),
        })
    }
}

impl Drop for EditorSession {
    fn drop(&mut self) {
        self.server.awareness().remove(self.id);
    }
}

/// Per-document editing statistics of one editor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EditorStats {
    /// Operations successfully committed by this editor.
    pub ops: u64,
    /// Commit retries after optimistic-concurrency losses.
    pub retries: u64,
    /// Remote events applied.
    pub events_applied: u64,
    /// Remote events that had to wait in the reorder buffer.
    pub events_reordered: u64,
    /// Full refreshes forced by transport eviction (lagged out) — the
    /// editor fell so far behind the broadcast stream that it had to
    /// resynchronize from the database and re-subscribe.
    pub resyncs: u64,
}

/// A caller-supplied position snapshotted against the local view, so it
/// can be re-resolved after remote edits land (see
/// [`EditorDoc::perform_at`]).
#[derive(Debug, Clone, Copy)]
enum PosAnchor {
    /// Position 0: always the document start.
    Start,
    /// After this character, with the original position as a fallback if
    /// the anchor is purged from the chain.
    After(tendax_text::CharId, usize),
    /// Out of range when captured; passed through untransformed.
    Raw(usize),
}

/// A document open in an editor session.
#[derive(Debug)]
pub struct EditorDoc {
    handle: DocHandle,
    sub: Box<dyn EventSource>,
    server: CollabServer,
    session: SessionId,
    cursor: usize,
    /// The character the cursor sits after (None = document start). The
    /// anchor keeps the cursor attached to its text as remote edits land.
    cursor_anchor: Option<tendax_text::CharId>,
    /// Events whose dependencies have not arrived yet (publication order
    /// on the bus can differ slightly from commit order).
    reorder: Vec<Arc<DocEvent>>,
    stats: EditorStats,
}

impl EditorDoc {
    pub fn doc(&self) -> DocId {
        self.handle.doc()
    }

    pub fn session(&self) -> SessionId {
        self.session
    }

    /// The local view of the text.
    pub fn text(&self) -> String {
        self.handle.text()
    }

    pub fn len(&self) -> usize {
        self.handle.len()
    }

    pub fn is_empty(&self) -> bool {
        self.handle.is_empty()
    }

    /// Direct read access to the underlying handle (metadata queries).
    pub fn handle(&self) -> &DocHandle {
        &self.handle
    }

    /// This editor's activity counters.
    pub fn stats(&self) -> EditorStats {
        self.stats
    }

    /// Pull and apply all deliverable remote events. Returns how many
    /// were applied.
    ///
    /// Publication on the bus happens after commit, outside the commit
    /// lock, so a later operation can occasionally arrive before the one
    /// it depends on. Events whose dependencies are missing are buffered
    /// and retried as soon as anything new applies; a buffer that cannot
    /// drain (e.g. the dependency's event was published before this
    /// editor subscribed) falls back to a full refresh.
    pub fn sync(&mut self) -> usize {
        self.recover_if_evicted();
        let events = self.sub.poll();
        self.apply_events(events)
    }

    /// Keep syncing until work arrives or the timeout elapses.
    pub fn sync_timeout(&mut self, timeout: Duration) -> usize {
        self.recover_if_evicted();
        let events = self.sub.poll_timeout(timeout);
        self.apply_events(events)
    }

    /// A transport that evicted this subscriber for lagging leaves a
    /// hole in the event stream: resynchronize from the database
    /// (supersedes everything the stream would have said) and
    /// re-subscribe so future events flow again.
    fn recover_if_evicted(&mut self) {
        if !self.sub.lagged_out() {
            return;
        }
        let doc = self.handle.doc();
        let latency = self.sub.latency();
        self.sub = self.server.transport().connect(doc, latency);
        self.reorder.clear();
        if self.handle.refresh().is_ok() {
            self.stats.resyncs += 1;
            self.reanchor_cursor();
        }
    }

    fn apply_events(&mut self, events: Vec<Arc<DocEvent>>) -> usize {
        let mut applied = 0;
        let floor = self.handle.synced_ts();
        for ev in events {
            if ev.origin == self.session {
                continue; // echo of our own operation
            }
            if ev.commit_ts <= floor {
                continue; // already reflected by the last rebuild
            }
            if !self.handle.effects_applicable(&ev.effects) {
                self.stats.events_reordered += 1;
            }
            self.reorder.push(ev);
        }
        // A refresh may have superseded buffered events.
        self.reorder
            .retain(|ev| ev.commit_ts > self.handle.synced_ts());
        // Drain the reorder buffer to a fixpoint: each successful apply
        // may unblock buffered dependents.
        let mut stale = false;
        'drain: loop {
            let mut progressed = false;
            let mut i = 0;
            while i < self.reorder.len() {
                if self.handle.effects_applicable(&self.reorder[i].effects) {
                    let ev = self.reorder.remove(i);
                    match self.handle.apply_remote(&ev.effects) {
                        Ok(()) => {
                            applied += 1;
                            self.stats.events_applied += 1;
                            progressed = true;
                        }
                        Err(_) => {
                            // StaleCache: the chain rejected an effect the
                            // cache vouched for — the view has drifted.
                            // Fall back to a refresh, which supersedes
                            // every buffered event (the retry).
                            stale = true;
                            break 'drain;
                        }
                    }
                } else {
                    i += 1;
                }
            }
            if !progressed {
                break;
            }
        }
        // Unresolvable holes (dependency will never arrive on this
        // subscription) or an incoherent cache: resynchronize from the
        // database, superseding everything still buffered.
        if (stale || self.reorder.len() > 64) && self.handle.refresh().is_ok() {
            applied += self.reorder.len();
            self.reorder.clear();
        }
        if applied > 0 {
            self.reanchor_cursor();
        }
        applied
    }

    /// Where this editor's cursor is.
    pub fn cursor(&self) -> usize {
        self.cursor
    }

    /// Move the cursor (published through awareness). The cursor anchors
    /// to the character it sits after, so remote edits move it naturally.
    pub fn set_cursor(&mut self, pos: usize) {
        self.cursor = pos.min(self.len());
        self.cursor_anchor = if self.cursor == 0 {
            None
        } else {
            self.handle.char_at(self.cursor - 1)
        };
        let cursor = self.cursor;
        self.server
            .presence_update(self.session, |p| p.cursor = Some(cursor));
    }

    /// Recompute the cursor from its anchor after remote changes.
    fn reanchor_cursor(&mut self) {
        let new_pos = match self.cursor_anchor {
            None => 0,
            Some(a) => match self.handle.caret_after(a) {
                Some(p) => p,
                None => {
                    // Anchor purged from the chain entirely: clamp.
                    self.cursor_anchor = None;
                    self.cursor.min(self.len())
                }
            },
        };
        if new_pos != self.cursor {
            self.cursor = new_pos;
            let cursor = self.cursor;
            self.server
                .presence_update(self.session, |p| p.cursor = Some(cursor));
        }
    }

    /// Select a range (published through awareness).
    pub fn select(&mut self, from: usize, to: usize) {
        self.server
            .presence_update(self.session, |p| p.selection = Some((from, to)));
    }

    // ------------------------------------------------------------- editing

    /// Type text at `pos`, retrying transparently on commit races.
    ///
    /// `pos` is interpreted against the caller's view at the moment of
    /// the call: it is anchored to the character it follows before the
    /// pre-edit sync runs, so concurrent remote edits move the insertion
    /// point with the text instead of shifting it by raw index. A
    /// position beyond the current view yields
    /// [`TextError::InvalidPosition`].
    pub fn type_text(&mut self, pos: usize, text: &str) -> Result<EditReceipt> {
        let owned = text.to_owned();
        let (at, receipt) = self.perform_at("insert", pos, move |h, p| h.insert_text(p, &owned))?;
        self.set_cursor(at + text.chars().count());
        Ok(receipt)
    }

    /// Delete a range, retrying transparently on commit races. The start
    /// position is anchored like [`EditorDoc::type_text`]'s.
    pub fn delete(&mut self, pos: usize, len: usize) -> Result<EditReceipt> {
        let (at, receipt) = self.perform_at("delete", pos, move |h, p| h.delete_range(p, len))?;
        self.set_cursor(at);
        Ok(receipt)
    }

    pub fn copy(&self, pos: usize, len: usize) -> Result<Clip> {
        self.handle.copy(pos, len)
    }

    pub fn paste(&mut self, pos: usize, clip: &Clip) -> Result<EditReceipt> {
        let clip = clip.clone();
        self.perform_at("paste", pos, move |h, p| h.paste(p, &clip))
            .map(|(_, receipt)| receipt)
    }

    pub fn paste_external(&mut self, pos: usize, text: &str, source: &str) -> Result<EditReceipt> {
        let (text, source) = (text.to_owned(), source.to_owned());
        self.perform_at("paste", pos, move |h, p| {
            h.paste_external(p, &text, &source)
        })
        .map(|(_, receipt)| receipt)
    }

    pub fn apply_style(&mut self, pos: usize, len: usize, style: StyleId) -> Result<EditReceipt> {
        self.perform_at("style", pos, move |h, p| h.apply_style(p, len, style))
            .map(|(_, receipt)| receipt)
    }

    /// Atomically move text into another open document (one database
    /// transaction across both documents). Both editors publish their
    /// half of the change to their respective subscribers.
    pub fn move_text(
        &mut self,
        pos: usize,
        len: usize,
        dst: &mut EditorDoc,
        dst_pos: usize,
    ) -> Result<(EditReceipt, EditReceipt)> {
        self.sync();
        dst.sync();
        let mut last = None;
        for attempt in 0..EDIT_RETRIES {
            if attempt > 0 {
                self.stats.retries += 1;
                self.server.note_retry(self.session);
                std::thread::sleep(backoff_delay(self.session, attempt));
                self.sync();
                dst.sync();
                self.handle.refresh()?;
                dst.handle.refresh()?;
            }
            match self.handle.move_to(pos, len, &mut dst.handle, dst_pos) {
                Ok((del, ins)) => {
                    self.stats.ops += 1;
                    dst.stats.ops += 1;
                    self.publish("delete", &del);
                    dst.publish("paste", &ins);
                    return Ok((del, ins));
                }
                Err(e) if e.is_retryable() => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(TextError::RetriesExhausted {
            attempts: EDIT_RETRIES,
            last: last.map(Box::new),
        })
    }

    pub fn undo(&mut self) -> Result<EditReceipt> {
        self.perform("undo", |h| h.undo())
    }

    pub fn redo(&mut self) -> Result<EditReceipt> {
        self.perform("redo", |h| h.redo())
    }

    pub fn global_undo(&mut self) -> Result<EditReceipt> {
        self.perform("undo", |h| h.global_undo())
    }

    pub fn global_redo(&mut self) -> Result<EditReceipt> {
        self.perform("redo", |h| h.global_redo())
    }

    /// Run an arbitrary handle operation under the session's retry/publish
    /// protocol (for notes, objects, structure, versions, …).
    pub fn with_handle<T>(
        &mut self,
        kind: &str,
        f: impl FnMut(&mut DocHandle) -> Result<(T, EditReceipt)>,
    ) -> Result<(T, EditReceipt)> {
        let mut f = f;
        self.sync();
        let mut last = None;
        for attempt in 0..EDIT_RETRIES {
            if attempt > 0 {
                self.stats.retries += 1;
                self.server.note_retry(self.session);
                std::thread::sleep(backoff_delay(self.session, attempt));
                self.sync();
                self.handle.refresh()?;
            }
            match f(&mut self.handle) {
                Ok((value, receipt)) => {
                    self.stats.ops += 1;
                    self.publish(kind, &receipt);
                    return Ok((value, receipt));
                }
                Err(e) if e.is_retryable() => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(TextError::RetriesExhausted {
            attempts: EDIT_RETRIES,
            last: last.map(Box::new),
        })
    }

    fn perform(
        &mut self,
        kind: &str,
        mut f: impl FnMut(&mut DocHandle) -> Result<EditReceipt>,
    ) -> Result<EditReceipt> {
        self.sync();
        let mut last = None;
        for attempt in 0..EDIT_RETRIES {
            if attempt > 0 {
                self.stats.retries += 1;
                self.server.note_retry(self.session);
                std::thread::sleep(backoff_delay(self.session, attempt));
                self.sync();
                self.handle.refresh()?;
            }
            match f(&mut self.handle) {
                Ok(receipt) => {
                    self.stats.ops += 1;
                    self.publish(kind, &receipt);
                    return Ok(receipt);
                }
                Err(e) if e.is_retryable() => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(TextError::RetriesExhausted {
            attempts: EDIT_RETRIES,
            last: last.map(Box::new),
        })
    }

    /// Like [`EditorDoc::perform`], but for operations addressed by a
    /// visible position. The position is captured as a character anchor
    /// *before* the pre-edit sync and re-resolved against the local view
    /// on every attempt, so remote edits applied by the sync (or by the
    /// retry refreshes) move the operation with the text the caller was
    /// pointing at. Returns the position the operation finally ran at.
    fn perform_at(
        &mut self,
        kind: &str,
        pos: usize,
        mut f: impl FnMut(&mut DocHandle, usize) -> Result<EditReceipt>,
    ) -> Result<(usize, EditReceipt)> {
        let anchor = self.capture_anchor(pos);
        self.sync();
        let mut last = None;
        for attempt in 0..EDIT_RETRIES {
            if attempt > 0 {
                self.stats.retries += 1;
                self.server.note_retry(self.session);
                std::thread::sleep(backoff_delay(self.session, attempt));
                self.sync();
                self.handle.refresh()?;
            }
            let at = self.resolve_anchor(&anchor);
            match f(&mut self.handle, at) {
                Ok(receipt) => {
                    self.stats.ops += 1;
                    self.publish(kind, &receipt);
                    return Ok((at, receipt));
                }
                Err(e) if e.is_retryable() => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(TextError::RetriesExhausted {
            attempts: EDIT_RETRIES,
            last: last.map(Box::new),
        })
    }

    /// Snapshot `pos` as an anchor in the current local view.
    fn capture_anchor(&self, pos: usize) -> PosAnchor {
        if pos == 0 {
            PosAnchor::Start
        } else {
            match self.handle.char_at(pos - 1) {
                Some(id) => PosAnchor::After(id, pos),
                // Beyond the caller's view: pass through unchanged so the
                // handle reports `InvalidPosition` exactly as it would
                // have without anchoring.
                None => PosAnchor::Raw(pos),
            }
        }
    }

    /// Map a captured anchor back to a position in the current view.
    fn resolve_anchor(&self, anchor: &PosAnchor) -> usize {
        match *anchor {
            PosAnchor::Start => 0,
            PosAnchor::After(id, fallback) => self
                .handle
                .caret_after(id)
                // Anchor purged from the chain entirely: clamp, the same
                // recovery the cursor uses.
                .unwrap_or_else(|| fallback.min(self.handle.len())),
            PosAnchor::Raw(pos) => pos,
        }
    }

    fn publish(&self, kind: &str, receipt: &EditReceipt) {
        if receipt.effects.is_empty() {
            return;
        }
        self.server.transport().publish(DocEvent {
            doc: self.handle.doc(),
            op: receipt.op,
            commit_ts: receipt.commit_ts,
            user: self.handle.user(),
            origin: self.session,
            kind: kind.to_owned(),
            effects: receipt.effects.clone(),
        });
        // `presence_update` stamps last_active for us.
        self.server.presence_update(self.session, |_| {});
    }
}

impl Drop for EditorDoc {
    /// Closing a document clears the awareness it advertised: a session
    /// whose editor window is gone must not keep showing up in
    /// `editors_on(doc)` as a ghost. (The focus may have moved to a
    /// document opened later — only clear presence still pointing here.)
    fn drop(&mut self) {
        let doc = self.handle.doc();
        self.server.presence_update(self.session, |p| {
            if p.doc == Some(doc) {
                p.doc = None;
                p.cursor = None;
                p.selection = None;
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tendax_text::TextDb;

    fn lan() -> (CollabServer, EditorSession, EditorSession) {
        let tdb = TextDb::in_memory();
        let alice = tdb.create_user("alice").unwrap();
        tdb.create_user("bob").unwrap();
        tdb.create_document("shared", alice).unwrap();
        let server = CollabServer::new(tdb);
        let sa = server.connect("alice", Platform::WindowsXp).unwrap();
        let sb = server.connect("bob", Platform::Linux).unwrap();
        (server, sa, sb)
    }

    #[test]
    fn two_editors_converge_via_bus() {
        let (_server, sa, sb) = lan();
        let mut da = sa.open("shared").unwrap();
        let mut db = sb.open("shared").unwrap();

        da.type_text(0, "hello").unwrap();
        db.sync();
        assert_eq!(db.text(), "hello");

        db.type_text(5, " world").unwrap();
        da.sync();
        assert_eq!(da.text(), "hello world");
        assert_eq!(da.text(), db.text());
    }

    #[test]
    fn same_position_race_retries_transparently() {
        let (_server, sa, sb) = lan();
        let mut da = sa.open("shared").unwrap();
        let mut db = sb.open("shared").unwrap();
        da.type_text(0, "base").unwrap();
        // Bob doesn't sync; his view is stale. The session retries for him.
        let receipt = db.type_text(0, "X").unwrap();
        assert!(!receipt.effects.is_empty());
        da.sync();
        db.sync();
        assert_eq!(da.text(), db.text());
        assert!(da.text().contains('X'));
        assert!(da.text().contains("base"));
    }

    #[test]
    fn awareness_tracks_cursor_and_doc() {
        let (server, sa, sb) = lan();
        let mut da = sa.open("shared").unwrap();
        let _db = sb.open("shared").unwrap();
        da.type_text(0, "hi").unwrap();
        let editors = server.editors_on(da.doc());
        assert_eq!(editors.len(), 2);
        let alice = editors.iter().find(|p| p.user_name == "alice").unwrap();
        assert_eq!(alice.cursor, Some(2)); // cursor after typed text
        da.select(0, 2);
        let editors = server.editors_on(da.doc());
        let alice = editors.iter().find(|p| p.user_name == "alice").unwrap();
        assert_eq!(alice.selection, Some((0, 2)));
    }

    #[test]
    fn undo_and_global_undo_across_sessions() {
        let (_server, sa, sb) = lan();
        let mut da = sa.open("shared").unwrap();
        let mut db = sb.open("shared").unwrap();
        da.type_text(0, "alice ").unwrap();
        db.sync();
        db.type_text(6, "bob").unwrap();
        da.sync();
        assert_eq!(da.text(), "alice bob");

        // Alice's local undo removes her own text, not Bob's.
        da.undo().unwrap();
        db.sync();
        assert_eq!(db.text(), "bob");

        // Bob global-undoes... his own edit is the newest edit.
        db.global_undo().unwrap();
        da.sync();
        assert_eq!(da.text(), "");

        db.global_redo().unwrap();
        da.sync();
        assert_eq!(da.text(), "bob");
    }

    #[test]
    fn latency_delays_but_preserves_convergence() {
        let tdb = TextDb::in_memory();
        let alice = tdb.create_user("alice").unwrap();
        tdb.create_user("bob").unwrap();
        tdb.create_document("shared", alice).unwrap();
        let server = CollabServer::with_latency(tdb, Duration::from_millis(20));
        let sa = server.connect("alice", Platform::MacOsX).unwrap();
        let sb = server.connect("bob", Platform::Linux).unwrap();
        let mut da = sa.open("shared").unwrap();
        let mut db = sb.open("shared").unwrap();

        da.type_text(0, "slow network").unwrap();
        // Immediately, Bob sees nothing.
        assert_eq!(db.sync(), 0);
        assert_eq!(db.text(), "");
        // After the latency elapses, the event arrives.
        let applied = db.sync_timeout(Duration::from_millis(500));
        assert_eq!(applied, 1);
        assert_eq!(db.text(), "slow network");
    }

    #[test]
    fn editor_stats_count_ops_retries_and_events() {
        let (server, sa, sb) = lan();
        let mut da = sa.open("shared").unwrap();
        let mut db = sb.open("shared").unwrap();
        da.type_text(0, "base").unwrap();
        db.sync();
        // An edit lands through a raw handle, bypassing the bus: Bob's
        // pre-edit sync cannot help, so his next edit must retry.
        let tdb = server.textdb().clone();
        let alice = tdb.user_by_name("alice").unwrap();
        let mut raw = tdb.open(da.doc(), alice).unwrap();
        raw.insert_text(0, "!").unwrap();
        db.type_text(0, "X").unwrap();
        let b = db.stats();
        assert_eq!(b.ops, 1);
        assert!(b.retries >= 1, "stale view must have forced a retry");
        let a = da.stats();
        assert_eq!(a.ops, 1);
        assert_eq!(a.retries, 0);
        da.sync();
        assert!(da.stats().events_applied >= 1);
    }

    #[test]
    fn out_of_order_delivery_is_reordered() {
        let (server, sa, sb) = lan();
        let mut da = sa.open("shared").unwrap();
        let mut db = sb.open("shared").unwrap();
        // Two dependent ops from Alice: "a" then "b" (b's anchor is a).
        let r1 = da.type_text(0, "a").unwrap();
        let r2 = da.type_text(1, "b").unwrap();
        db.sync(); // consume the normally-ordered events first
        assert_eq!(db.text(), "ab");

        // Now craft an out-of-order redelivery of two further ops.
        let r3 = da.type_text(2, "c").unwrap();
        let r4 = da.type_text(3, "d").unwrap();
        // Publish d-before-c to a third editor that hasn't seen either.
        let sc = server
            .connect("alice", crate::awareness::Platform::MacOsX)
            .unwrap();
        let mut dc = sc.open("shared").unwrap();
        // dc's rebuild already contains everything; force staleness by
        // rebuilding a fresh view *before* two new ops, then deliver
        // them inverted through the bus.
        let r5 = da.type_text(4, "e").unwrap();
        let r6 = da.type_text(5, "f").unwrap();
        let mk = |r: &EditReceipt, kind: &str| DocEvent {
            doc: da.doc(),
            op: r.op,
            commit_ts: r.commit_ts,
            user: da.handle().user(),
            origin: SessionId(9999), // foreign origin
            kind: kind.into(),
            effects: r.effects.clone(),
        };
        // Deliver f before e: the reorder buffer must hold f until e.
        dc.apply_events(vec![
            Arc::new(mk(&r6, "insert")),
            Arc::new(mk(&r5, "insert")),
        ]);
        assert_eq!(dc.text(), "abcdef");
        let _ = (r1, r2, r3, r4);
    }

    #[test]
    fn stale_events_below_rebuild_snapshot_are_dropped() {
        let (_server, sa, sb) = lan();
        let mut da = sa.open("shared").unwrap();
        let r = da.type_text(0, "x").unwrap();
        // Bob opens AFTER the edit: his rebuild contains it already.
        let mut db = sb.open("shared").unwrap();
        assert_eq!(db.text(), "x");
        // Redelivering the old event must be a no-op (not a duplicate).
        let ev = DocEvent {
            doc: da.doc(),
            op: r.op,
            commit_ts: r.commit_ts,
            user: da.handle().user(),
            origin: SessionId(9999),
            kind: "insert".into(),
            effects: r.effects.clone(),
        };
        let applied = db.apply_events(vec![Arc::new(ev)]);
        assert_eq!(applied, 0);
        assert_eq!(db.text(), "x");
    }

    #[test]
    fn cursor_follows_remote_edits() {
        let (_server, sa, sb) = lan();
        let mut da = sa.open("shared").unwrap();
        let mut db = sb.open("shared").unwrap();
        da.type_text(0, "hello world").unwrap();
        db.sync();
        // Alice puts her cursor after "hello" (position 5).
        da.set_cursor(5);
        assert_eq!(da.cursor(), 5);
        // Bob inserts at the front; Alice's cursor shifts right.
        db.type_text(0, ">> ").unwrap();
        da.sync();
        assert_eq!(da.text(), ">> hello world");
        assert_eq!(da.cursor(), 8);
        // Bob deletes text spanning Alice's anchor region.
        db.delete(0, 5).unwrap(); // removes ">> he"
        da.sync();
        assert_eq!(da.text(), "llo world");
        // The anchor char ('o' of hello) survived: cursor sits after it.
        assert_eq!(da.cursor(), 3);
        // Bob deletes the anchor char itself: cursor degrades gracefully
        // to the position where the anchor used to be.
        db.delete(2, 1).unwrap();
        da.sync();
        assert_eq!(da.text(), "ll world");
        assert_eq!(da.cursor(), 2);
    }

    #[test]
    fn cross_document_move_propagates_to_both_audiences() {
        let tdb = TextDb::in_memory();
        let alice = tdb.create_user("alice").unwrap();
        tdb.create_user("bob").unwrap();
        tdb.create_document("src", alice).unwrap();
        tdb.create_document("dst", alice).unwrap();
        let server = CollabServer::new(tdb);
        let sa = server.connect("alice", Platform::WindowsXp).unwrap();
        let sb = server.connect("bob", Platform::Linux).unwrap();

        let mut a_src = sa.open("src").unwrap();
        let mut a_dst = sa.open("dst").unwrap();
        let mut b_src = sb.open("src").unwrap();
        let mut b_dst = sb.open("dst").unwrap();
        a_src.type_text(0, "take THIS away").unwrap();
        b_src.sync();

        a_src.move_text(5, 4, &mut a_dst, 0).unwrap();
        assert_eq!(a_src.text(), "take  away");
        assert_eq!(a_dst.text(), "THIS");
        // Watchers of each document converge via their own buses.
        b_src.sync();
        b_dst.sync();
        assert_eq!(b_src.text(), "take  away");
        assert_eq!(b_dst.text(), "THIS");
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        for attempt in 1..=EDIT_RETRIES {
            let a = backoff_delay(SessionId(7), attempt);
            let b = backoff_delay(SessionId(7), attempt);
            assert_eq!(a, b, "same session+attempt must give the same delay");
            let ceil = BACKOFF_BASE_US << (attempt as u32 - 1).min(BACKOFF_MAX_SHIFT);
            let us = a.as_micros() as u64;
            assert!(
                us >= ceil / 2 && us <= ceil,
                "attempt {attempt}: {us}µs outside [{}, {ceil}]",
                ceil / 2
            );
        }
        // The ceiling grows then caps: the last delay is bounded.
        let last = backoff_delay(SessionId(7), EDIT_RETRIES);
        assert!(last <= Duration::from_micros(BACKOFF_BASE_US << BACKOFF_MAX_SHIFT));
    }

    #[test]
    fn backoff_decorrelates_sessions() {
        // Two lockstep sessions must not share a retry schedule — that is
        // the livelock the jitter exists to break. With 16 attempts the
        // chance of all-equal delays by luck is negligible.
        let differs = (1..=EDIT_RETRIES)
            .any(|a| backoff_delay(SessionId(1), a) != backoff_delay(SessionId(2), a));
        assert!(differs, "sessions retry in lockstep");
    }

    /// Regression (retry livelock): the loop used to end with
    /// `last.expect("retry loop ran")`, surfacing whatever transient
    /// error happened to be last. Exhaustion is now its own signal —
    /// carrying the final attempt's underlying error as its source, and
    /// feeding the server's per-session retry registry.
    #[test]
    fn exhausted_retries_surface_retries_exhausted() {
        let (server, sa, _sb) = lan();
        let session = sa.id();
        let mut da = sa.open("shared").unwrap();
        let doc = da.doc();
        let err = da
            .with_handle::<()>("doomed", |_h| Err(TextError::StaleView(doc)))
            .unwrap_err();
        assert_eq!(
            err,
            TextError::RetriesExhausted {
                attempts: EDIT_RETRIES,
                last: Some(Box::new(TextError::StaleView(doc))),
            }
        );
        let src = std::error::Error::source(&err).expect("carries a source");
        assert!(src.to_string().contains("stale"));
        assert_eq!(da.stats().retries as usize, EDIT_RETRIES - 1);
        assert_eq!(server.session_retries(session) as usize, EDIT_RETRIES - 1);
        assert_eq!(
            server.retries_by_session().get(&session).copied(),
            Some((EDIT_RETRIES - 1) as u64)
        );
    }

    /// Regression (stale-anchor panic): a remote event whose anchor the
    /// local cache has never heard of used to panic the process inside
    /// `Chain::insert_after`. It must instead fall back to a refresh and
    /// leave the editor consistent with the database.
    #[test]
    fn incoherent_remote_event_recovers_via_refresh() {
        use tendax_text::{CharId, Effect, StyleId, UserId};
        let (_server, sa, sb) = lan();
        let mut da = sa.open("shared").unwrap();
        let db = sb.open("shared").unwrap();
        da.type_text(0, "solid").unwrap();
        // A forged event: inserts after an anchor that exists in the
        // database-backed view of *nobody*. `effects_applicable` would
        // buffer it forever; a second effect in the same event names the
        // phantom as introduced, so the batch passes the vet and the
        // chain itself must reject it.
        let phantom = CharId(u64::MAX - 1);
        let ev = DocEvent {
            doc: da.doc(),
            op: tendax_text::OpId::NONE,
            commit_ts: da.handle().synced_ts() + 1_000_000,
            user: db.handle().user(),
            origin: SessionId(9999),
            kind: "insert".into(),
            effects: vec![Effect::Insert {
                char: phantom,
                prev: Some(CharId(u64::MAX - 2)), // unknown anchor
                ch: '!',
                author: UserId(1),
                ts: 0,
                style: StyleId::NONE,
                src_doc: da.doc(),
                src_char: CharId::NONE,
                external: None,
            }],
        };
        // The vet rejects it (unknown anchor), so it parks in the
        // reorder buffer rather than panicking...
        da.apply_events(vec![Arc::new(ev.clone())]);
        assert_eq!(da.text(), "solid");
        // ...and a direct apply (the path a vet false-positive would
        // take) returns StaleCache instead of crashing.
        let err = da.handle.apply_remote(&ev.effects).unwrap_err();
        assert!(matches!(err, TextError::StaleCache(_)));
        assert!(err.is_retryable());
        // The session heals: refresh + further edits work.
        da.handle.refresh().unwrap();
        da.type_text(5, "!").unwrap();
        assert_eq!(da.text(), "solid!");
    }

    /// Regression (ghost awareness): `open_id` set `p.doc`/`p.cursor`
    /// but nothing ever cleared them, so a closed editor window kept
    /// showing up in `editors_on(doc)` forever. Dropping the
    /// `EditorDoc` now clears the presence it advertised.
    #[test]
    fn dropping_editor_doc_clears_presence() {
        let (server, sa, _sb) = lan();
        let da = sa.open("shared").unwrap();
        let doc = da.doc();
        assert_eq!(server.editors_on(doc).len(), 1);
        drop(da);
        assert!(
            server.editors_on(doc).is_empty(),
            "closed editor must not haunt editors_on()"
        );
        // The session itself is still online, just not focused anywhere.
        let online = server.who_is_online();
        assert_eq!(online.len(), 2);
        assert_eq!(online[0].doc, None);
        assert_eq!(online[0].cursor, None);
    }

    /// Focus moves with the editor windows: closing an *older* window
    /// must not clear presence that now points at a newer document.
    #[test]
    fn dropping_stale_editor_doc_keeps_newer_focus() {
        let tdb = TextDb::in_memory();
        let alice = tdb.create_user("alice").unwrap();
        tdb.create_document("first", alice).unwrap();
        tdb.create_document("second", alice).unwrap();
        let server = CollabServer::new(tdb);
        let sa = server.connect("alice", Platform::Linux).unwrap();
        let d1 = sa.open("first").unwrap();
        let d2 = sa.open("second").unwrap();
        // Focus is on "second" (opened later). Closing "first" must not
        // blank it out.
        drop(d1);
        let second = d2.doc();
        assert_eq!(server.editors_on(second).len(), 1);
        drop(d2);
        assert!(server.editors_on(second).is_empty());
    }

    /// An editor evicted from the transport for lagging recovers on its
    /// next sync: full refresh from the database plus a fresh
    /// subscription, counted in `EditorStats::resyncs`.
    #[test]
    fn evicted_editor_recovers_via_refresh() {
        use crate::bus::{BusPolicy, LanBus};
        let tdb = TextDb::in_memory();
        let alice = tdb.create_user("alice").unwrap();
        tdb.create_user("bob").unwrap();
        tdb.create_document("shared", alice).unwrap();
        let bus = LanBus::with_policy(BusPolicy {
            capacity: 2,
            lag_limit: 3,
        });
        let server = CollabServer::with_transport(tdb, std::sync::Arc::new(bus));
        let sa = server.connect("alice", Platform::WindowsXp).unwrap();
        let sb = server.connect("bob", Platform::Linux).unwrap();
        let mut da = sa.open("shared").unwrap();
        let mut db = sb.open("shared").unwrap();
        // Bob never syncs while Alice types far past his queue bound.
        for i in 0..12 {
            da.type_text(i, "x").unwrap();
        }
        assert_eq!(server.transport().stats().evicted, 1);
        // Bob's next sync heals: refresh + re-subscribe.
        db.sync();
        assert_eq!(db.stats().resyncs, 1);
        assert_eq!(db.text(), da.text());
        // And the fresh subscription delivers future events normally.
        da.type_text(0, "!").unwrap();
        db.sync();
        assert_eq!(db.text(), da.text());
    }

    #[test]
    fn with_handle_runs_arbitrary_ops() {
        let (_server, sa, _sb) = lan();
        let mut da = sa.open("shared").unwrap();
        da.type_text(0, "annotate me").unwrap();
        let (note, receipt) = da
            .with_handle("note", |h| {
                let id = h.add_note(0, 8, "check")?;
                Ok((
                    id,
                    EditReceipt {
                        op: tendax_text::OpId::NONE,
                        commit_ts: 0,
                        effects: vec![],
                    },
                ))
            })
            .unwrap();
        assert!(!note.is_none());
        assert!(receipt.effects.is_empty());
        assert_eq!(da.handle().notes().unwrap().len(), 1);
    }
}
