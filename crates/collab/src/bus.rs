//! The simulated-LAN event bus.
//!
//! The EDBT demo ran editors on several machines on a LAN; committed
//! transactions were pushed to every connected editor so "everything
//! which is typed appears within the editor as soon as [it is] stored
//! persistently". This module reproduces that push channel in-process:
//! publishers broadcast [`DocEvent`]s, each subscriber has a configurable
//! one-way latency, and messages become visible to `poll` only after
//! their latency has elapsed — enough to reproduce the ordering and
//! awareness behaviour of the real network deterministically.
//!
//! ## Backpressure
//!
//! Per-subscriber queues are **bounded** ([`BusPolicy`]). A subscriber
//! that stops polling does not grow a queue without bound and does not
//! slow anyone else down: once its queue is full further events are
//! dropped (counted in [`crate::transport::TransportStats::dropped`]),
//! and once the drops exceed the lag limit the subscriber is evicted.
//! An evicted subscriber observes [`Subscription::lagged_out`] and must
//! resynchronize from the database before re-subscribing — the same
//! slow-consumer policy `tendax-net` applies to TCP connections.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use tendax_text::{DocId, Effect, OpId, UserId};

use crate::transport::{EventSource, Transport, TransportStats};

/// Identifier of an editor session on the bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u64);

/// One committed operation, as broadcast to all editors.
#[derive(Debug, Clone, PartialEq)]
pub struct DocEvent {
    pub doc: DocId,
    pub op: OpId,
    /// Commit timestamp of the transaction that produced the effects.
    /// Receivers drop events at or below their rebuild snapshot: a full
    /// refresh already reflects them.
    pub commit_ts: u64,
    pub user: UserId,
    /// The session that performed the edit (receivers skip their own).
    pub origin: SessionId,
    pub kind: String,
    pub effects: Vec<Effect>,
}

/// Bounded-queue policy for subscribers (shared by the TCP server).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusPolicy {
    /// Maximum undelivered events queued per subscriber; further events
    /// are dropped (and counted) until the consumer catches up.
    pub capacity: usize,
    /// Cumulative drops a subscriber may accrue before it is evicted.
    pub lag_limit: u64,
}

impl Default for BusPolicy {
    fn default() -> Self {
        BusPolicy {
            capacity: 1024,
            lag_limit: 256,
        }
    }
}

#[derive(Debug)]
struct Subscriber {
    doc: DocId,
    latency: Duration,
    tx: Sender<(Instant, Arc<DocEvent>)>,
    /// Undelivered events currently in this subscriber's queue; shared
    /// with the [`Subscription`], which decrements as it receives.
    depth: Arc<AtomicUsize>,
    /// Events dropped because the queue was full.
    lagged: u64,
    /// Set on eviction so the subscription can tell "evicted for
    /// lagging" apart from "bus dropped".
    evicted: Arc<AtomicBool>,
}

#[derive(Debug, Default)]
struct BusInner {
    subscribers: HashMap<u64, Subscriber>,
    next_sub: u64,
    published: u64,
    delivered: u64,
    dropped: u64,
    evicted: u64,
}

/// Publish-notification callbacks (see
/// [`Transport::register_publish_hook`]). Kept outside [`BusInner`] so
/// hooks run after the subscriber lock is released.
struct HookSet(Mutex<Vec<Box<dyn Fn() -> bool + Send + Sync>>>);

impl std::fmt::Debug for HookSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("HookSet")
            .field(&self.0.lock().len())
            .finish()
    }
}

/// The shared broadcast bus. Cheap to clone.
#[derive(Debug, Clone)]
pub struct LanBus {
    inner: Arc<Mutex<BusInner>>,
    hooks: Arc<HookSet>,
    policy: BusPolicy,
}

impl Default for LanBus {
    fn default() -> Self {
        Self::with_policy(BusPolicy::default())
    }
}

impl LanBus {
    pub fn new() -> Self {
        Self::default()
    }

    /// A bus with an explicit per-subscriber queue bound and lag limit.
    pub fn with_policy(policy: BusPolicy) -> Self {
        LanBus {
            inner: Arc::new(Mutex::new(BusInner::default())),
            hooks: Arc::new(HookSet(Mutex::new(Vec::new()))),
            policy,
        }
    }

    pub fn policy(&self) -> BusPolicy {
        self.policy
    }

    /// Subscribe to events of one document with a simulated one-way
    /// latency. Dropping the returned subscription unsubscribes.
    pub fn subscribe(&self, doc: DocId, latency: Duration) -> Subscription {
        let (tx, rx) = unbounded();
        let depth = Arc::new(AtomicUsize::new(0));
        let evicted = Arc::new(AtomicBool::new(false));
        let mut inner = self.inner.lock();
        let id = inner.next_sub;
        inner.next_sub += 1;
        inner.subscribers.insert(
            id,
            Subscriber {
                doc,
                latency,
                tx,
                depth: Arc::clone(&depth),
                lagged: 0,
                evicted: Arc::clone(&evicted),
            },
        );
        Subscription {
            id,
            doc,
            latency,
            rx,
            pending: Vec::new(),
            bus: self.clone(),
            depth,
            evicted,
        }
    }

    /// Broadcast an event to all subscribers of its document. The
    /// payload (including its `Vec<Effect>`) is allocated once and
    /// shared: fan-out to N editors is N `Arc` clones, not N deep
    /// copies of the effect list.
    ///
    /// Never blocks on a consumer: a subscriber whose queue is at
    /// [`BusPolicy::capacity`] has the event dropped (counted), and one
    /// that has dropped more than [`BusPolicy::lag_limit`] events is
    /// evicted on the spot.
    pub fn publish(&self, event: DocEvent) {
        let event = Arc::new(event);
        let policy = self.policy;
        let mut inner = self.inner.lock();
        inner.published += 1;
        let now = Instant::now();
        let mut delivered = 0u64;
        let mut dropped = 0u64;
        let mut evicted = 0u64;
        inner.subscribers.retain(|_, sub| {
            if sub.doc != event.doc {
                return true;
            }
            if sub.depth.load(Ordering::Acquire) >= policy.capacity {
                sub.lagged += 1;
                dropped += 1;
                if sub.lagged > policy.lag_limit {
                    sub.evicted.store(true, Ordering::Release);
                    evicted += 1;
                    return false; // dropping `tx` disconnects the channel
                }
                return true;
            }
            let deliver_at = now + sub.latency;
            sub.depth.fetch_add(1, Ordering::AcqRel);
            // A closed channel means the subscription was dropped.
            if sub.tx.send((deliver_at, Arc::clone(&event))).is_ok() {
                delivered += 1;
                true
            } else {
                false
            }
        });
        inner.delivered += delivered;
        inner.dropped += dropped;
        inner.evicted += evicted;
        drop(inner);
        // Wake pollers after the subscriber lock is released; a hook
        // returning false is deregistered.
        let mut hooks = self.hooks.0.lock();
        if !hooks.is_empty() {
            hooks.retain(|h| h());
        }
    }

    /// Register a publish-notification callback (see
    /// [`Transport::register_publish_hook`]).
    pub fn register_publish_hook(&self, hook: Box<dyn Fn() -> bool + Send + Sync>) {
        self.hooks.0.lock().push(hook);
    }

    /// Total events ever published (bus statistics).
    pub fn published_count(&self) -> u64 {
        self.inner.lock().published
    }

    /// Number of live subscriptions.
    pub fn subscriber_count(&self) -> usize {
        self.inner.lock().subscribers.len()
    }

    /// Cumulative delivery/backpressure counters.
    pub fn stats(&self) -> TransportStats {
        let inner = self.inner.lock();
        TransportStats {
            published: inner.published,
            delivered: inner.delivered,
            dropped: inner.dropped,
            evicted: inner.evicted,
        }
    }

    fn unsubscribe(&self, id: u64) {
        self.inner.lock().subscribers.remove(&id);
    }
}

impl Transport for LanBus {
    fn connect(&self, doc: DocId, latency: Duration) -> Box<dyn EventSource> {
        Box::new(self.subscribe(doc, latency))
    }

    fn publish(&self, event: DocEvent) {
        LanBus::publish(self, event);
    }

    fn subscriber_count(&self) -> usize {
        LanBus::subscriber_count(self)
    }

    fn stats(&self) -> TransportStats {
        LanBus::stats(self)
    }

    fn register_publish_hook(&self, hook: Box<dyn Fn() -> bool + Send + Sync>) {
        LanBus::register_publish_hook(self, hook);
    }

    fn supports_publish_hook(&self) -> bool {
        true
    }
}

/// A receiver of document events, latency-gated.
#[derive(Debug)]
pub struct Subscription {
    id: u64,
    doc: DocId,
    latency: Duration,
    rx: Receiver<(Instant, Arc<DocEvent>)>,
    /// Messages received from the channel but not yet past their latency.
    pending: Vec<(Instant, Arc<DocEvent>)>,
    bus: LanBus,
    /// Shared with the bus: undelivered events in the channel.
    depth: Arc<AtomicUsize>,
    evicted: Arc<AtomicBool>,
}

impl Subscription {
    /// Pull everything currently in the channel into `pending`,
    /// releasing queue capacity as we go.
    fn drain_channel(&mut self) {
        while let Ok(msg) = self.rx.try_recv() {
            self.depth.fetch_sub(1, Ordering::AcqRel);
            self.pending.push(msg);
        }
    }

    /// Events whose simulated latency has elapsed, in publish order.
    pub fn poll(&mut self) -> Vec<Arc<DocEvent>> {
        self.drain_channel();
        let now = Instant::now();
        let mut ready = Vec::new();
        // Delivery preserves publish order: messages entered `pending` in
        // publish order and latency is constant per subscriber, so the
        // ready prefix is exactly what has "arrived".
        let mut keep = Vec::with_capacity(self.pending.len());
        let mut blocked = false;
        for (at, ev) in self.pending.drain(..) {
            if !blocked && at <= now {
                ready.push(ev);
            } else {
                blocked = true;
                keep.push((at, ev));
            }
        }
        self.pending = keep;
        ready
    }

    /// Wait until at least one event is deliverable or the timeout
    /// expires, then poll. No blind polling ticks: the wait blocks on
    /// the channel (a fresh publish wakes it immediately) for
    /// `min(deadline, earliest pending deliver_at)` — exactly as long
    /// as there can be nothing to deliver.
    pub fn poll_timeout(&mut self, timeout: Duration) -> Vec<Arc<DocEvent>> {
        let deadline = Instant::now() + timeout;
        loop {
            let ready = self.poll();
            if !ready.is_empty() {
                return ready;
            }
            let now = Instant::now();
            if now >= deadline {
                return ready;
            }
            let mut wake = deadline;
            if let Some(at) = self.pending.iter().map(|(at, _)| *at).min() {
                wake = wake.min(at);
            }
            let wait = wake.saturating_duration_since(now);
            match self.rx.recv_timeout(wait) {
                Ok(msg) => {
                    self.depth.fetch_sub(1, Ordering::AcqRel);
                    self.pending.push(msg);
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    // The bus is gone; nothing new can arrive. With
                    // nothing pending either there is nothing to wait
                    // for — return instead of sleeping out the timeout.
                    if self.pending.is_empty() {
                        return Vec::new();
                    }
                    // Sleep out the latency gate on what is pending.
                    std::thread::sleep(wait);
                }
            }
        }
    }

    /// Events queued but not yet deliverable (in flight on the "wire").
    pub fn in_flight(&mut self) -> usize {
        self.drain_channel();
        self.pending.len()
    }

    /// True once the bus evicted this subscription for lagging past
    /// [`BusPolicy::lag_limit`]. The event stream has a hole: refresh
    /// from the database and re-subscribe.
    pub fn lagged_out(&self) -> bool {
        self.evicted.load(Ordering::Acquire)
    }

    pub fn doc(&self) -> DocId {
        self.doc
    }

    pub fn latency(&self) -> Duration {
        self.latency
    }
}

impl EventSource for Subscription {
    fn poll(&mut self) -> Vec<Arc<DocEvent>> {
        Subscription::poll(self)
    }

    fn poll_timeout(&mut self, timeout: Duration) -> Vec<Arc<DocEvent>> {
        Subscription::poll_timeout(self, timeout)
    }

    fn in_flight(&mut self) -> usize {
        Subscription::in_flight(self)
    }

    fn lagged_out(&self) -> bool {
        Subscription::lagged_out(self)
    }

    fn doc(&self) -> DocId {
        self.doc
    }

    fn latency(&self) -> Duration {
        self.latency
    }
}

impl Drop for Subscription {
    fn drop(&mut self) {
        self.bus.unsubscribe(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(doc: u64, op: u64) -> DocEvent {
        DocEvent {
            doc: DocId(doc),
            op: OpId(op),
            commit_ts: op,
            user: UserId(1),
            origin: SessionId(1),
            kind: "insert".into(),
            effects: vec![],
        }
    }

    #[test]
    fn zero_latency_delivery_is_immediate() {
        let bus = LanBus::new();
        let mut sub = bus.subscribe(DocId(1), Duration::ZERO);
        bus.publish(event(1, 10));
        bus.publish(event(1, 11));
        let got = sub.poll();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].op, OpId(10));
        assert_eq!(got[1].op, OpId(11));
        assert!(sub.poll().is_empty());
    }

    #[test]
    fn events_filtered_by_document() {
        let bus = LanBus::new();
        let mut sub1 = bus.subscribe(DocId(1), Duration::ZERO);
        let mut sub2 = bus.subscribe(DocId(2), Duration::ZERO);
        bus.publish(event(1, 10));
        assert_eq!(sub1.poll().len(), 1);
        assert!(sub2.poll().is_empty());
    }

    #[test]
    fn latency_gates_delivery() {
        let bus = LanBus::new();
        let mut sub = bus.subscribe(DocId(1), Duration::from_millis(30));
        bus.publish(event(1, 10));
        assert!(sub.poll().is_empty());
        assert_eq!(sub.in_flight(), 1);
        let got = sub.poll_timeout(Duration::from_millis(500));
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn order_preserved_under_latency() {
        let bus = LanBus::new();
        let mut sub = bus.subscribe(DocId(1), Duration::from_millis(10));
        for i in 0..5 {
            bus.publish(event(1, i));
        }
        std::thread::sleep(Duration::from_millis(25));
        let got = sub.poll();
        let ops: Vec<u64> = got.iter().map(|e| e.op.0).collect();
        assert_eq!(ops, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn fanout_shares_one_payload_across_subscribers() {
        use tendax_text::CharId;
        let bus = LanBus::new();
        let mut subs: Vec<Subscription> = (0..16)
            .map(|_| bus.subscribe(DocId(1), Duration::ZERO))
            .collect();
        let mut ev = event(1, 10);
        ev.effects = vec![Effect::Delete {
            char: CharId(7),
            by: UserId(1),
            ts: 1,
        }];
        bus.publish(ev);
        let received: Vec<Arc<DocEvent>> = subs.iter_mut().map(|s| s.poll().remove(0)).collect();
        // Every subscriber got a handle to the *same* allocation — the
        // effects vector was never copied per subscriber.
        for pair in received.windows(2) {
            assert!(
                Arc::ptr_eq(&pair[0], &pair[1]),
                "fan-out must share one payload"
            );
        }
        assert_eq!(Arc::strong_count(&received[0]), 16);
    }

    #[test]
    fn poll_timeout_wakes_on_publish_without_spinning() {
        let bus = LanBus::new();
        let mut sub = bus.subscribe(DocId(1), Duration::ZERO);
        let publisher = {
            let bus = bus.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                bus.publish(event(1, 1));
            })
        };
        let start = Instant::now();
        let got = sub.poll_timeout(Duration::from_secs(5));
        publisher.join().unwrap();
        assert_eq!(got.len(), 1);
        // Delivered on the publish wake-up, nowhere near the timeout.
        assert!(start.elapsed() < Duration::from_secs(1));
    }

    /// Regression: a disconnected channel with nothing pending used to
    /// sleep out the entire remaining timeout even though no event
    /// could ever arrive.
    #[test]
    fn poll_timeout_returns_immediately_when_bus_disconnected() {
        let bus = LanBus::new();
        let mut sub = bus.subscribe(DocId(1), Duration::ZERO);
        bus.unsubscribe(sub.id); // drops the sender: channel disconnected
        let start = Instant::now();
        let got = sub.poll_timeout(Duration::from_secs(5));
        assert!(got.is_empty());
        assert!(
            start.elapsed() < Duration::from_secs(1),
            "disconnected + empty pending must not sleep out the timeout"
        );
    }

    #[test]
    fn dropping_subscription_unsubscribes() {
        let bus = LanBus::new();
        let sub = bus.subscribe(DocId(1), Duration::ZERO);
        assert_eq!(bus.subscriber_count(), 1);
        drop(sub);
        bus.publish(event(1, 1)); // must not panic; lazily cleaned
        assert_eq!(bus.subscriber_count(), 0);
        assert_eq!(bus.published_count(), 1);
    }

    /// Regression (unbounded fan-out queues): a subscriber that never
    /// polls used to grow its channel without bound — one stalled editor
    /// could OOM the broadcast path. The queue is now capped at
    /// [`BusPolicy::capacity`]; overflow is dropped and counted.
    #[test]
    fn stalled_subscriber_queue_is_bounded() {
        let bus = LanBus::with_policy(BusPolicy {
            capacity: 4,
            lag_limit: 1_000_000, // no eviction in this test
        });
        let mut stalled = bus.subscribe(DocId(1), Duration::ZERO);
        for i in 0..100 {
            bus.publish(event(1, i));
        }
        // Only `capacity` events were ever queued; the rest were dropped.
        assert_eq!(stalled.in_flight(), 4);
        let stats = bus.stats();
        assert_eq!(stats.published, 100);
        assert_eq!(stats.delivered, 4);
        assert_eq!(stats.dropped, 96);
        assert_eq!(stats.evicted, 0);
        // The subscriber is still connected (under the lag limit) and
        // receives the head-of-queue prefix it did get.
        let got = stalled.poll();
        assert_eq!(got.len(), 4);
        assert_eq!(got[0].op, OpId(0));
        assert!(!stalled.lagged_out());
    }

    /// A subscriber lagging past [`BusPolicy::lag_limit`] is evicted:
    /// the publisher stops paying for it, and the subscription observes
    /// `lagged_out` so it can refresh + re-subscribe.
    #[test]
    fn lagging_subscriber_is_evicted() {
        let bus = LanBus::with_policy(BusPolicy {
            capacity: 2,
            lag_limit: 3,
        });
        let stalled = bus.subscribe(DocId(1), Duration::ZERO);
        let mut healthy = bus.subscribe(DocId(1), Duration::ZERO);
        for i in 0..20 {
            bus.publish(event(1, i));
            healthy.poll(); // keeps its own queue empty
        }
        // 2 queued, then 3 tolerated drops, then eviction.
        assert!(stalled.lagged_out());
        assert_eq!(bus.subscriber_count(), 1);
        let stats = bus.stats();
        assert_eq!(stats.evicted, 1);
        assert_eq!(stats.dropped, 4); // lag_limit + the final straw
                                      // The healthy subscriber saw everything.
        assert!(!healthy.lagged_out());
    }

    /// Catching up un-stalls a subscriber: capacity freed by polling is
    /// available to later publishes.
    #[test]
    fn draining_frees_queue_capacity() {
        let bus = LanBus::with_policy(BusPolicy {
            capacity: 2,
            lag_limit: 1_000_000,
        });
        let mut sub = bus.subscribe(DocId(1), Duration::ZERO);
        bus.publish(event(1, 0));
        bus.publish(event(1, 1));
        bus.publish(event(1, 2)); // dropped: queue full
        assert_eq!(sub.poll().len(), 2);
        bus.publish(event(1, 3)); // fits again
        let got = sub.poll();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].op, OpId(3));
        assert_eq!(bus.stats().dropped, 1);
    }
}
