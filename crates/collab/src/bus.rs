//! The simulated-LAN event bus.
//!
//! The EDBT demo ran editors on several machines on a LAN; committed
//! transactions were pushed to every connected editor so "everything
//! which is typed appears within the editor as soon as [it is] stored
//! persistently". This module reproduces that push channel in-process:
//! publishers broadcast [`DocEvent`]s, each subscriber has a configurable
//! one-way latency, and messages become visible to `poll` only after
//! their latency has elapsed — enough to reproduce the ordering and
//! awareness behaviour of the real network deterministically.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use tendax_text::{DocId, Effect, OpId, UserId};

/// Identifier of an editor session on the bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u64);

/// One committed operation, as broadcast to all editors.
#[derive(Debug, Clone, PartialEq)]
pub struct DocEvent {
    pub doc: DocId,
    pub op: OpId,
    /// Commit timestamp of the transaction that produced the effects.
    /// Receivers drop events at or below their rebuild snapshot: a full
    /// refresh already reflects them.
    pub commit_ts: u64,
    pub user: UserId,
    /// The session that performed the edit (receivers skip their own).
    pub origin: SessionId,
    pub kind: String,
    pub effects: Vec<Effect>,
}

#[derive(Debug)]
struct Subscriber {
    doc: DocId,
    latency: Duration,
    tx: Sender<(Instant, Arc<DocEvent>)>,
}

#[derive(Debug, Default)]
struct BusInner {
    subscribers: HashMap<u64, Subscriber>,
    next_sub: u64,
    published: u64,
}

/// The shared broadcast bus. Cheap to clone.
#[derive(Debug, Clone, Default)]
pub struct LanBus {
    inner: Arc<Mutex<BusInner>>,
}

impl LanBus {
    pub fn new() -> Self {
        Self::default()
    }

    /// Subscribe to events of one document with a simulated one-way
    /// latency. Dropping the returned subscription unsubscribes.
    pub fn subscribe(&self, doc: DocId, latency: Duration) -> Subscription {
        let (tx, rx) = unbounded();
        let mut inner = self.inner.lock();
        let id = inner.next_sub;
        inner.next_sub += 1;
        inner
            .subscribers
            .insert(id, Subscriber { doc, latency, tx });
        Subscription {
            id,
            rx,
            pending: Vec::new(),
            bus: self.clone(),
        }
    }

    /// Broadcast an event to all subscribers of its document. The
    /// payload (including its `Vec<Effect>`) is allocated once and
    /// shared: fan-out to N editors is N `Arc` clones, not N deep
    /// copies of the effect list.
    pub fn publish(&self, event: DocEvent) {
        let event = Arc::new(event);
        let mut inner = self.inner.lock();
        inner.published += 1;
        let now = Instant::now();
        inner.subscribers.retain(|_, sub| {
            if sub.doc != event.doc {
                return true;
            }
            let deliver_at = now + sub.latency;
            // A closed channel means the subscription was dropped.
            sub.tx.send((deliver_at, Arc::clone(&event))).is_ok()
        });
    }

    /// Total events ever published (bus statistics).
    pub fn published_count(&self) -> u64 {
        self.inner.lock().published
    }

    /// Number of live subscriptions.
    pub fn subscriber_count(&self) -> usize {
        self.inner.lock().subscribers.len()
    }

    fn unsubscribe(&self, id: u64) {
        self.inner.lock().subscribers.remove(&id);
    }
}

/// A receiver of document events, latency-gated.
#[derive(Debug)]
pub struct Subscription {
    id: u64,
    rx: Receiver<(Instant, Arc<DocEvent>)>,
    /// Messages received from the channel but not yet past their latency.
    pending: Vec<(Instant, Arc<DocEvent>)>,
    bus: LanBus,
}

impl Subscription {
    /// Events whose simulated latency has elapsed, in publish order.
    pub fn poll(&mut self) -> Vec<Arc<DocEvent>> {
        while let Ok(msg) = self.rx.try_recv() {
            self.pending.push(msg);
        }
        let now = Instant::now();
        let mut ready = Vec::new();
        // Delivery preserves publish order: messages entered `pending` in
        // publish order and latency is constant per subscriber, so the
        // ready prefix is exactly what has "arrived".
        let mut keep = Vec::with_capacity(self.pending.len());
        let mut blocked = false;
        for (at, ev) in self.pending.drain(..) {
            if !blocked && at <= now {
                ready.push(ev);
            } else {
                blocked = true;
                keep.push((at, ev));
            }
        }
        self.pending = keep;
        ready
    }

    /// Wait until at least one event is deliverable or the timeout
    /// expires, then poll. No blind polling ticks: the wait blocks on
    /// the channel (a fresh publish wakes it immediately) for
    /// `min(deadline, earliest pending deliver_at)` — exactly as long
    /// as there can be nothing to deliver.
    pub fn poll_timeout(&mut self, timeout: Duration) -> Vec<Arc<DocEvent>> {
        let deadline = Instant::now() + timeout;
        loop {
            let ready = self.poll();
            if !ready.is_empty() {
                return ready;
            }
            let now = Instant::now();
            if now >= deadline {
                return ready;
            }
            let mut wake = deadline;
            if let Some(at) = self.pending.iter().map(|(at, _)| *at).min() {
                wake = wake.min(at);
            }
            let wait = wake.saturating_duration_since(now);
            match self.rx.recv_timeout(wait) {
                Ok(msg) => self.pending.push(msg),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    // The bus is gone; nothing new can arrive. With
                    // nothing pending either there is nothing to wait
                    // for — return instead of sleeping out the timeout.
                    if self.pending.is_empty() {
                        return Vec::new();
                    }
                    // Sleep out the latency gate on what is pending.
                    std::thread::sleep(wait);
                }
            }
        }
    }

    /// Events queued but not yet deliverable (in flight on the "wire").
    pub fn in_flight(&mut self) -> usize {
        while let Ok(msg) = self.rx.try_recv() {
            self.pending.push(msg);
        }
        self.pending.len()
    }
}

impl Drop for Subscription {
    fn drop(&mut self) {
        self.bus.unsubscribe(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(doc: u64, op: u64) -> DocEvent {
        DocEvent {
            doc: DocId(doc),
            op: OpId(op),
            commit_ts: op,
            user: UserId(1),
            origin: SessionId(1),
            kind: "insert".into(),
            effects: vec![],
        }
    }

    #[test]
    fn zero_latency_delivery_is_immediate() {
        let bus = LanBus::new();
        let mut sub = bus.subscribe(DocId(1), Duration::ZERO);
        bus.publish(event(1, 10));
        bus.publish(event(1, 11));
        let got = sub.poll();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].op, OpId(10));
        assert_eq!(got[1].op, OpId(11));
        assert!(sub.poll().is_empty());
    }

    #[test]
    fn events_filtered_by_document() {
        let bus = LanBus::new();
        let mut sub1 = bus.subscribe(DocId(1), Duration::ZERO);
        let mut sub2 = bus.subscribe(DocId(2), Duration::ZERO);
        bus.publish(event(1, 10));
        assert_eq!(sub1.poll().len(), 1);
        assert!(sub2.poll().is_empty());
    }

    #[test]
    fn latency_gates_delivery() {
        let bus = LanBus::new();
        let mut sub = bus.subscribe(DocId(1), Duration::from_millis(30));
        bus.publish(event(1, 10));
        assert!(sub.poll().is_empty());
        assert_eq!(sub.in_flight(), 1);
        let got = sub.poll_timeout(Duration::from_millis(500));
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn order_preserved_under_latency() {
        let bus = LanBus::new();
        let mut sub = bus.subscribe(DocId(1), Duration::from_millis(10));
        for i in 0..5 {
            bus.publish(event(1, i));
        }
        std::thread::sleep(Duration::from_millis(25));
        let got = sub.poll();
        let ops: Vec<u64> = got.iter().map(|e| e.op.0).collect();
        assert_eq!(ops, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn fanout_shares_one_payload_across_subscribers() {
        use tendax_text::CharId;
        let bus = LanBus::new();
        let mut subs: Vec<Subscription> = (0..16)
            .map(|_| bus.subscribe(DocId(1), Duration::ZERO))
            .collect();
        let mut ev = event(1, 10);
        ev.effects = vec![Effect::Delete {
            char: CharId(7),
            by: UserId(1),
            ts: 1,
        }];
        bus.publish(ev);
        let received: Vec<Arc<DocEvent>> = subs.iter_mut().map(|s| s.poll().remove(0)).collect();
        // Every subscriber got a handle to the *same* allocation — the
        // effects vector was never copied per subscriber.
        for pair in received.windows(2) {
            assert!(
                Arc::ptr_eq(&pair[0], &pair[1]),
                "fan-out must share one payload"
            );
        }
        assert_eq!(Arc::strong_count(&received[0]), 16);
    }

    #[test]
    fn poll_timeout_wakes_on_publish_without_spinning() {
        let bus = LanBus::new();
        let mut sub = bus.subscribe(DocId(1), Duration::ZERO);
        let publisher = {
            let bus = bus.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                bus.publish(event(1, 1));
            })
        };
        let start = Instant::now();
        let got = sub.poll_timeout(Duration::from_secs(5));
        publisher.join().unwrap();
        assert_eq!(got.len(), 1);
        // Delivered on the publish wake-up, nowhere near the timeout.
        assert!(start.elapsed() < Duration::from_secs(1));
    }

    /// Regression: a disconnected channel with nothing pending used to
    /// sleep out the entire remaining timeout even though no event
    /// could ever arrive.
    #[test]
    fn poll_timeout_returns_immediately_when_bus_disconnected() {
        let bus = LanBus::new();
        let mut sub = bus.subscribe(DocId(1), Duration::ZERO);
        bus.unsubscribe(sub.id); // drops the sender: channel disconnected
        let start = Instant::now();
        let got = sub.poll_timeout(Duration::from_secs(5));
        assert!(got.is_empty());
        assert!(
            start.elapsed() < Duration::from_secs(1),
            "disconnected + empty pending must not sleep out the timeout"
        );
    }

    #[test]
    fn dropping_subscription_unsubscribes() {
        let bus = LanBus::new();
        let sub = bus.subscribe(DocId(1), Duration::ZERO);
        assert_eq!(bus.subscriber_count(), 1);
        drop(sub);
        bus.publish(event(1, 1)); // must not panic; lazily cleaned
        assert_eq!(bus.subscriber_count(), 0);
        assert_eq!(bus.published_count(), 1);
    }
}
