//! The collaboration server: sessions, presence, and the event bus.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use tendax_storage::MaintenanceOptions;
use tendax_text::{DocId, Result, TextDb};

use crate::awareness::{AwarenessRegistry, Platform, Presence};
use crate::bus::{LanBus, SessionId};
use crate::session::EditorSession;
use crate::transport::Transport;

/// The in-process TeNDaX collaboration server.
///
/// Owns the shared [`TextDb`], the broadcast [`Transport`] (a [`LanBus`]
/// by default) and the [`AwarenessRegistry`]. Cheap to clone; every
/// editor session holds one.
#[derive(Debug, Clone)]
pub struct CollabServer {
    tdb: TextDb,
    transport: Arc<dyn Transport>,
    awareness: AwarenessRegistry,
    next_session: Arc<AtomicU64>,
    default_latency: Duration,
    /// Commit retries per session, recorded by the editors' retry loops.
    /// A hot document shows up here before it shows up anywhere else:
    /// with commutative commits the counts should stay near zero.
    retries: Arc<Mutex<BTreeMap<SessionId, u64>>>,
}

impl CollabServer {
    pub fn new(tdb: TextDb) -> Self {
        Self::with_latency(tdb, Duration::ZERO)
    }

    /// A server broadcasting over an explicit transport implementation
    /// (the in-process default is `LanBus::new()`).
    pub fn with_transport(tdb: TextDb, transport: Arc<dyn Transport>) -> Self {
        CollabServer {
            tdb,
            transport,
            awareness: AwarenessRegistry::new(),
            next_session: Arc::new(AtomicU64::new(1)),
            default_latency: Duration::ZERO,
            retries: Arc::new(Mutex::new(BTreeMap::new())),
        }
    }

    /// A server that runs background maintenance (auto-vacuum and
    /// auto-checkpoint) on the shared database — the configuration a
    /// long-running multi-editor deployment wants. Maintenance stops
    /// when the last clone of the underlying database is dropped.
    pub fn with_maintenance(tdb: TextDb, opts: MaintenanceOptions) -> Self {
        tdb.database().start_maintenance(opts);
        Self::new(tdb)
    }

    /// A server whose editor links simulate the given one-way latency.
    pub fn with_latency(tdb: TextDb, default_latency: Duration) -> Self {
        CollabServer {
            tdb,
            transport: Arc::new(LanBus::new()),
            awareness: AwarenessRegistry::new(),
            next_session: Arc::new(AtomicU64::new(1)),
            default_latency,
            retries: Arc::new(Mutex::new(BTreeMap::new())),
        }
    }

    pub fn textdb(&self) -> &TextDb {
        &self.tdb
    }

    /// The broadcast transport committed operations fan out over.
    pub fn transport(&self) -> &Arc<dyn Transport> {
        &self.transport
    }

    pub fn awareness(&self) -> &AwarenessRegistry {
        &self.awareness
    }

    /// Mutate a session's presence, stamping the engine clock — the one
    /// entry point for presence mutations, so activity tracking (and
    /// therefore idle pruning) can't miss an update site.
    pub fn presence_update(&self, session: SessionId, f: impl FnOnce(&mut Presence)) {
        self.awareness.update(session, self.tdb.now(), f);
    }

    pub fn default_latency(&self) -> Duration {
        self.default_latency
    }

    /// Connect an existing user from an editor on `platform`.
    pub fn connect(&self, user_name: &str, platform: Platform) -> Result<EditorSession> {
        self.connect_with_latency(user_name, platform, self.default_latency)
    }

    /// Connect with an explicit simulated link latency.
    pub fn connect_with_latency(
        &self,
        user_name: &str,
        platform: Platform,
        latency: Duration,
    ) -> Result<EditorSession> {
        let user = self.tdb.user_by_name(user_name)?;
        let id = SessionId(self.next_session.fetch_add(1, Ordering::Relaxed));
        self.awareness.register(Presence {
            session: id,
            user,
            user_name: user_name.to_owned(),
            platform: platform.clone(),
            doc: None,
            cursor: None,
            selection: None,
            last_active: self.tdb.now(),
        });
        Ok(EditorSession::new(
            self.clone(),
            id,
            user,
            user_name.to_owned(),
            platform,
            latency,
        ))
    }

    /// Record one commit retry for `session` (called from the editors'
    /// retry loops).
    pub(crate) fn note_retry(&self, session: SessionId) {
        *self
            .retries
            .lock()
            .expect("retry registry poisoned")
            .entry(session)
            .or_insert(0) += 1;
    }

    /// Commit retries recorded for one session.
    pub fn session_retries(&self, session: SessionId) -> u64 {
        self.retries
            .lock()
            .expect("retry registry poisoned")
            .get(&session)
            .copied()
            .unwrap_or(0)
    }

    /// Commit retries per session, for all sessions that retried at
    /// least once.
    pub fn retries_by_session(&self) -> BTreeMap<SessionId, u64> {
        self.retries
            .lock()
            .expect("retry registry poisoned")
            .clone()
    }

    /// Everyone currently connected.
    pub fn who_is_online(&self) -> Vec<Presence> {
        self.awareness.all()
    }

    /// Sessions currently focused on `doc`.
    pub fn editors_on(&self, doc: DocId) -> Vec<Presence> {
        self.awareness.on_doc(doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_registers_presence() {
        let tdb = TextDb::in_memory();
        tdb.create_user("alice").unwrap();
        tdb.create_user("bob").unwrap();
        let server = CollabServer::new(tdb);
        let s1 = server.connect("alice", Platform::WindowsXp).unwrap();
        let _s2 = server.connect("bob", Platform::MacOsX).unwrap();
        let online = server.who_is_online();
        assert_eq!(online.len(), 2);
        assert_eq!(online[0].user_name, "alice");
        assert_eq!(online[0].platform, Platform::WindowsXp);
        assert_eq!(online[1].platform, Platform::MacOsX);
        drop(s1);
        assert_eq!(server.who_is_online().len(), 1);
    }

    #[test]
    fn maintenance_server_vacuums_while_editors_type() {
        let tdb = TextDb::in_memory();
        tdb.create_user("alice").unwrap();
        let server = CollabServer::with_maintenance(
            tdb,
            MaintenanceOptions {
                interval: Duration::from_millis(1),
                vacuum_pruneable: 8,
                ..MaintenanceOptions::default()
            },
        );
        let alice = server.connect("alice", Platform::Linux).unwrap();
        server
            .textdb()
            .create_document("notes", alice.user())
            .unwrap();
        let mut doc = alice.open("notes").unwrap();
        // Repeated insert/delete churn leaves superseded versions behind
        // for the background vacuum to prune.
        for _ in 0..20 {
            doc.type_text(0, "scratch").unwrap();
            doc.delete(0, 7).unwrap();
        }
        doc.type_text(0, "kept").unwrap();

        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let stats = server.textdb().database().stats();
            if stats.maintenance_vacuums > 0 {
                assert!(stats.versions_pruned > 0);
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "background vacuum never ran"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(doc.text(), "kept");
    }

    #[test]
    fn unknown_user_cannot_connect() {
        let tdb = TextDb::in_memory();
        let server = CollabServer::new(tdb);
        assert!(server.connect("ghost", Platform::Linux).is_err());
    }
}
