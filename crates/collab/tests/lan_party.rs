//! Multi-threaded "LAN-party" stress tests: several editors hammer the
//! same document concurrently from real threads; all views must converge
//! and the database must stay consistent.

use std::time::Duration;

use tendax_collab::{CollabServer, Platform};
use tendax_text::TextDb;

fn server_with_users(n: usize) -> CollabServer {
    let tdb = TextDb::in_memory();
    let creator = tdb.create_user("user0").unwrap();
    for i in 1..n {
        tdb.create_user(&format!("user{i}")).unwrap();
    }
    tdb.create_document("party", creator).unwrap();
    CollabServer::new(tdb)
}

#[test]
fn concurrent_typists_converge() {
    let n_users = 4;
    let edits_per_user = 30;
    let server = server_with_users(n_users);

    let mut handles = Vec::new();
    for u in 0..n_users {
        let server = server.clone();
        handles.push(std::thread::spawn(move || {
            let platform = match u % 3 {
                0 => Platform::WindowsXp,
                1 => Platform::Linux,
                _ => Platform::MacOsX,
            };
            let session = server.connect(&format!("user{u}"), platform).unwrap();
            let mut doc = session.open("party").unwrap();
            for i in 0..edits_per_user {
                doc.sync();
                // Everyone types their marker at a pseudo-random position.
                let pos = (u * 31 + i * 7) % (doc.len() + 1);
                doc.type_text(pos, &format!("{u}")).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    // A fresh open must reconstruct a consistent chain with all edits.
    let tdb = server.textdb();
    let reader = tdb.user_by_name("user0").unwrap();
    let doc = tdb.document_by_name("party").unwrap();
    let h = tdb.open(doc, reader).unwrap();
    assert_eq!(h.len(), n_users * edits_per_user);
    // Every user's characters are all present.
    for u in 0..n_users {
        let marker = char::from_digit(u as u32, 10).unwrap();
        let count = h.text().chars().filter(|c| *c == marker).count();
        assert_eq!(count, edits_per_user, "user {u} lost edits");
    }
    // No aborted transaction left stray state: attribution sums to length.
    let total: usize = h.attribution().iter().map(|(_, n)| n).sum();
    assert_eq!(total, h.len());
}

#[test]
fn concurrent_editors_with_deletes_stay_consistent() {
    let n_users = 3;
    let rounds = 20;
    let server = server_with_users(n_users);

    let mut handles = Vec::new();
    for u in 0..n_users {
        let server = server.clone();
        handles.push(std::thread::spawn(move || {
            let session = server
                .connect(&format!("user{u}"), Platform::Linux)
                .unwrap();
            let mut doc = session.open("party").unwrap();
            for i in 0..rounds {
                doc.sync();
                let len = doc.len();
                if i % 3 == 2 && len > 4 {
                    let pos = (u * 13 + i * 5) % (len - 1);
                    let dl = 1 + (i % 2).min(len - pos - 1);
                    // Deletes may race with other deletes of the same
                    // chars; that is fine (idempotent tombstoning).
                    let _ = doc.delete(pos, dl);
                } else {
                    let pos = (u * 17 + i * 3) % (len + 1);
                    doc.type_text(pos, "ab").unwrap();
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    // The database chain must rebuild without corruption.
    let tdb = server.textdb();
    let reader = tdb.user_by_name("user0").unwrap();
    let doc = tdb.document_by_name("party").unwrap();
    let h = tdb.open(doc, reader).unwrap();
    // Total tuples = every inserted char, visible or tombstoned.
    assert!(h.chain_len() >= h.len());
    assert!(h.text().chars().all(|c| c == 'a' || c == 'b'));
}

#[test]
fn editors_with_latency_converge_eventually() {
    let tdb = TextDb::in_memory();
    let alice = tdb.create_user("alice").unwrap();
    tdb.create_user("bob").unwrap();
    tdb.create_document("party", alice).unwrap();
    let server = CollabServer::with_latency(tdb, Duration::from_millis(5));

    let sa = server.connect("alice", Platform::WindowsXp).unwrap();
    let sb = server.connect("bob", Platform::MacOsX).unwrap();
    let mut da = sa.open("party").unwrap();
    let mut db = sb.open("party").unwrap();

    for i in 0..10 {
        da.type_text(da.len().min(i), "a").unwrap();
        db.type_text(0, "b").unwrap();
    }
    // Drain both links.
    for _ in 0..100 {
        da.sync();
        db.sync();
        if da.text() == db.text() && da.len() == 20 {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(da.text(), db.text());
    assert_eq!(da.len(), 20);
}
