//! Property tests for the collaboration layer: editors that sync at
//! arbitrary points (including never, until the end) always converge,
//! and the reorder buffer handles any delivery pattern the bus+retry
//! machinery can produce.

use proptest::prelude::*;
use tendax_collab::{CollabServer, Platform};
use tendax_text::{TextDb, TextError};

#[derive(Debug, Clone)]
enum Step {
    /// Editor `e` types at a pseudo-position.
    Type { editor: usize, pos: usize },
    /// Editor `e` deletes one char at a pseudo-position.
    Delete { editor: usize, pos: usize },
    /// Editor `e` pulls from the bus.
    Sync { editor: usize },
}

fn arb_step(n_editors: usize) -> impl Strategy<Value = Step> {
    prop_oneof![
        3 => (0..n_editors, any::<usize>()).prop_map(|(editor, pos)| Step::Type { editor, pos }),
        2 => (0..n_editors, any::<usize>()).prop_map(|(editor, pos)| Step::Delete { editor, pos }),
        2 => (0..n_editors).prop_map(|editor| Step::Sync { editor }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any interleaving of edits and syncs across three editors ends in
    /// convergence once everyone drains their queue, and the converged
    /// text matches a fresh open straight from the database.
    #[test]
    fn editors_converge_under_arbitrary_sync_patterns(
        script in proptest::collection::vec(arb_step(3), 1..60)
    ) {
        let tdb = TextDb::in_memory();
        let creator = tdb.create_user("user0").unwrap();
        tdb.create_user("user1").unwrap();
        tdb.create_user("user2").unwrap();
        tdb.create_document("doc", creator).unwrap();
        let server = CollabServer::new(tdb);
        let sessions: Vec<_> = (0..3)
            .map(|i| {
                server
                    .connect(&format!("user{i}"), Platform::Linux)
                    .unwrap()
            })
            .collect();
        let mut editors: Vec<_> = sessions.iter().map(|s| s.open("doc").unwrap()).collect();

        for step in script {
            match step {
                // Positions are computed against the editor's local view;
                // the session syncs before editing, so a position can
                // become invalid (exactly like a user's stale cursor in a
                // real editor). Such actions are dropped, never corrupt.
                Step::Type { editor, pos } => {
                    let e = &mut editors[editor];
                    let p = pos % (e.len() + 1);
                    let marker = char::from_digit(editor as u32, 10).unwrap();
                    match e.type_text(p, &marker.to_string()) {
                        Ok(_) | Err(TextError::InvalidPosition { .. }) => {}
                        Err(other) => return Err(TestCaseError::fail(other.to_string())),
                    }
                }
                Step::Delete { editor, pos } => {
                    let e = &mut editors[editor];
                    if e.len() > 0 {
                        let p = pos % e.len();
                        match e.delete(p, 1) {
                            Ok(_) | Err(TextError::InvalidPosition { .. }) => {}
                            Err(other) => return Err(TestCaseError::fail(other.to_string())),
                        }
                    }
                }
                Step::Sync { editor } => {
                    editors[editor].sync();
                }
            }
        }

        // Everyone drains (a couple of rounds, since syncs can publish
        // nothing new but reorder buffers may hold entries).
        for _ in 0..4 {
            for e in editors.iter_mut() {
                e.sync();
            }
        }
        let reference = {
            let tdb = server.textdb();
            let doc = tdb.document_by_name("doc").unwrap();
            tdb.open(doc, creator).unwrap().text()
        };
        for (i, e) in editors.iter().enumerate() {
            prop_assert_eq!(
                e.text(),
                reference.clone(),
                "editor {} diverged", i
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Disjoint-position concurrency: three pinned editors each own one
    /// region of a shared document and never sync mid-script. With
    /// commutative chain-neighborhood commits every interleaving must
    /// (a) commit first-try — zero conflicts, zero true overlaps — and
    /// (b) converge byte-identically to the serialized execution of
    /// each editor's ops against its own region.
    #[test]
    fn disjoint_region_edits_merge_without_conflicts(
        script in proptest::collection::vec(
            (0usize..3, any::<bool>(), any::<usize>()),
            1..80,
        )
    ) {
        const SEED: &str = "aaaaaaaa|bbbbbbbb|cccccccc";
        let tdb = TextDb::in_memory();
        let creator = tdb.create_user("user0").unwrap();
        let doc = tdb.create_document("doc", creator).unwrap();
        tdb.open(doc, creator).unwrap().insert_text(0, SEED).unwrap();

        let mut editors: Vec<_> = (0..3)
            .map(|_| {
                let mut h = tdb.open(doc, creator).unwrap();
                h.pin_base(true);
                h
            })
            .collect();
        // Region i spans 8 seed chars; separators are never edited. In an
        // editor's pinned local view the other regions never change, so
        // its region start stays at the seed offset.
        let starts = [0usize, 9, 18];
        let mut models = vec![
            SEED[0..8].to_string(),
            SEED[9..17].to_string(),
            SEED[18..26].to_string(),
        ];

        for (editor, is_insert, pos) in script {
            let start = starts[editor];
            let model = &mut models[editor];
            let marker = char::from_digit(editor as u32, 10).unwrap();
            if is_insert {
                let p = pos % (model.len() + 1);
                editors[editor]
                    .insert_text(start + p, &marker.to_string())
                    .map_err(|e| TestCaseError::fail(e.to_string()))?;
                model.insert(p, marker);
            } else if !model.is_empty() {
                let p = pos % model.len();
                editors[editor]
                    .delete_range(start + p, 1)
                    .map_err(|e| TestCaseError::fail(e.to_string()))?;
                model.remove(p);
            }
        }

        // Serialized reference: each region is exactly its editor's ops
        // replayed in isolation.
        let expected = format!("{}|{}|{}", models[0], models[1], models[2]);
        let actual = tdb.open(doc, creator).unwrap().text();
        prop_assert_eq!(actual, expected);

        let stats = tdb.database().stats();
        prop_assert_eq!(stats.conflicts, 0, "disjoint edits must not conflict");
        prop_assert_eq!(stats.write_conflicts_true_overlap, 0);
    }
}
