//! Property tests for the collaboration layer: editors that sync at
//! arbitrary points (including never, until the end) always converge,
//! and the reorder buffer handles any delivery pattern the bus+retry
//! machinery can produce.

use proptest::prelude::*;
use tendax_collab::{CollabServer, Platform};
use tendax_text::{TextDb, TextError};

#[derive(Debug, Clone)]
enum Step {
    /// Editor `e` types at a pseudo-position.
    Type { editor: usize, pos: usize },
    /// Editor `e` deletes one char at a pseudo-position.
    Delete { editor: usize, pos: usize },
    /// Editor `e` pulls from the bus.
    Sync { editor: usize },
}

fn arb_step(n_editors: usize) -> impl Strategy<Value = Step> {
    prop_oneof![
        3 => (0..n_editors, any::<usize>()).prop_map(|(editor, pos)| Step::Type { editor, pos }),
        2 => (0..n_editors, any::<usize>()).prop_map(|(editor, pos)| Step::Delete { editor, pos }),
        2 => (0..n_editors).prop_map(|editor| Step::Sync { editor }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any interleaving of edits and syncs across three editors ends in
    /// convergence once everyone drains their queue, and the converged
    /// text matches a fresh open straight from the database.
    #[test]
    fn editors_converge_under_arbitrary_sync_patterns(
        script in proptest::collection::vec(arb_step(3), 1..60)
    ) {
        let tdb = TextDb::in_memory();
        let creator = tdb.create_user("user0").unwrap();
        tdb.create_user("user1").unwrap();
        tdb.create_user("user2").unwrap();
        tdb.create_document("doc", creator).unwrap();
        let server = CollabServer::new(tdb);
        let sessions: Vec<_> = (0..3)
            .map(|i| {
                server
                    .connect(&format!("user{i}"), Platform::Linux)
                    .unwrap()
            })
            .collect();
        let mut editors: Vec<_> = sessions.iter().map(|s| s.open("doc").unwrap()).collect();

        for step in script {
            match step {
                // Positions are computed against the editor's local view;
                // the session syncs before editing, so a position can
                // become invalid (exactly like a user's stale cursor in a
                // real editor). Such actions are dropped, never corrupt.
                Step::Type { editor, pos } => {
                    let e = &mut editors[editor];
                    let p = pos % (e.len() + 1);
                    let marker = char::from_digit(editor as u32, 10).unwrap();
                    match e.type_text(p, &marker.to_string()) {
                        Ok(_) | Err(TextError::InvalidPosition { .. }) => {}
                        Err(other) => return Err(TestCaseError::fail(other.to_string())),
                    }
                }
                Step::Delete { editor, pos } => {
                    let e = &mut editors[editor];
                    if e.len() > 0 {
                        let p = pos % e.len();
                        match e.delete(p, 1) {
                            Ok(_) | Err(TextError::InvalidPosition { .. }) => {}
                            Err(other) => return Err(TestCaseError::fail(other.to_string())),
                        }
                    }
                }
                Step::Sync { editor } => {
                    editors[editor].sync();
                }
            }
        }

        // Everyone drains (a couple of rounds, since syncs can publish
        // nothing new but reorder buffers may hold entries).
        for _ in 0..4 {
            for e in editors.iter_mut() {
                e.sync();
            }
        }
        let reference = {
            let tdb = server.textdb();
            let doc = tdb.document_by_name("doc").unwrap();
            tdb.open(doc, creator).unwrap().text()
        };
        for (i, e) in editors.iter().enumerate() {
            prop_assert_eq!(
                e.text(),
                reference.clone(),
                "editor {} diverged", i
            );
        }
    }
}
