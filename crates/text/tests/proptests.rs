//! Property-based tests for the text extension.
//!
//! The reference model is a plain `String`; the system under test is the
//! full stack (character tuples in the MVCC engine + the chain cache).

use proptest::prelude::*;

use tendax_text::{DocHandle, TextDb, UserId};

#[derive(Debug, Clone)]
enum EditOp {
    Insert(usize, String),
    Delete(usize, usize),
    Undo,
    Redo,
}

fn arb_edit() -> impl Strategy<Value = EditOp> {
    prop_oneof![
        4 => (any::<usize>(), "[a-z ]{1,8}").prop_map(|(p, s)| EditOp::Insert(p, s)),
        3 => (any::<usize>(), 1usize..6).prop_map(|(p, n)| EditOp::Delete(p, n)),
        1 => Just(EditOp::Undo),
        1 => Just(EditOp::Redo),
    ]
}

fn setup() -> (TextDb, UserId, DocHandle) {
    let tdb = TextDb::in_memory();
    let user = tdb.create_user("alice").unwrap();
    let doc = tdb.create_document("d", user).unwrap();
    let h = tdb.open(doc, user).unwrap();
    (tdb, user, h)
}

fn char_insert(s: &mut String, pos: usize, text: &str) {
    let byte = s.char_indices().nth(pos).map(|(b, _)| b).unwrap_or(s.len());
    s.insert_str(byte, text);
}

fn char_delete(s: &mut String, pos: usize, len: usize) -> String {
    let chars: Vec<char> = s.chars().collect();
    let removed: String = chars[pos..pos + len].iter().collect();
    *s = chars[..pos]
        .iter()
        .chain(chars[pos + len..].iter())
        .collect();
    removed
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary single-user edit scripts: the database-backed document
    /// always equals the string model; a reload from raw tuples agrees.
    #[test]
    fn document_matches_string_model(script in proptest::collection::vec(arb_edit(), 1..40)) {
        let (tdb, user, mut h) = setup();
        let mut model = String::new();
        // Model undo/redo as state snapshots (engine semantics: undo
        // reverts the newest not-undone edit op). The engine additionally
        // permits redo *after* intervening edits (re-applying the undone
        // op out of order); a snapshot model cannot predict that, so the
        // script only exercises redo while no edit happened since the
        // last undo.
        let mut undo_stack: Vec<String> = Vec::new();
        let mut redo_stack: Vec<String> = Vec::new();
        let mut edited_since_undo = false;
        // The engine keeps undone ops redoable even across edits; the
        // snapshot model does not. Count how many engine-level redoable
        // undos exist so we only assert NothingToRedo when it holds.
        let mut engine_redoable = 0usize;

        for op in script {
            match op {
                EditOp::Insert(p, text) => {
                    let pos = p % (model.chars().count() + 1);
                    h.insert_text(pos, &text).unwrap();
                    undo_stack.push(model.clone());
                    char_insert(&mut model, pos, &text);
                    redo_stack.clear();
                    edited_since_undo = true;
                }
                EditOp::Delete(p, n) => {
                    let len = model.chars().count();
                    if len == 0 {
                        continue;
                    }
                    let pos = p % len;
                    let n = n.min(len - pos);
                    if n == 0 {
                        continue;
                    }
                    h.delete_range(pos, n).unwrap();
                    undo_stack.push(model.clone());
                    char_delete(&mut model, pos, n);
                    redo_stack.clear();
                    edited_since_undo = true;
                }
                EditOp::Undo => {
                    match undo_stack.pop() {
                        Some(prev) => {
                            h.undo().unwrap();
                            redo_stack.push(model.clone());
                            model = prev;
                            edited_since_undo = false;
                            engine_redoable += 1;
                        }
                        None => {
                            prop_assert!(h.undo().is_err());
                        }
                    }
                }
                EditOp::Redo => {
                    if edited_since_undo {
                        continue; // engine semantics diverge from snapshots
                    }
                    match redo_stack.pop() {
                        Some(next) => {
                            h.redo().unwrap();
                            undo_stack.push(model.clone());
                            model = next;
                            engine_redoable -= 1;
                        }
                        None if engine_redoable == 0 => {
                            prop_assert!(h.redo().is_err());
                        }
                        None => {
                            // Engine could redo an op from before an edit
                            // boundary; snapshots can't predict the result.
                        }
                    }
                }
            }
            prop_assert_eq!(h.text(), model.clone());
            prop_assert_eq!(h.len(), model.chars().count());
        }

        // Reload from raw tuples and compare.
        let fresh = tdb.open(h.doc(), user).unwrap();
        prop_assert_eq!(fresh.text(), model);
    }

    /// Copy-paste between two documents preserves the copied text and
    /// stamps provenance on every pasted character.
    #[test]
    fn paste_preserves_text_and_provenance(
        src_text in "[a-z]{5,30}",
        start_frac in 0.0f64..1.0,
        len in 1usize..10,
    ) {
        let tdb = TextDb::in_memory();
        let user = tdb.create_user("u").unwrap();
        let d1 = tdb.create_document("src", user).unwrap();
        let d2 = tdb.create_document("dst", user).unwrap();
        let mut h1 = tdb.open(d1, user).unwrap();
        h1.insert_text(0, &src_text).unwrap();
        let n = src_text.chars().count();
        let start = ((n as f64 - 1.0) * start_frac) as usize;
        let len = len.min(n - start);
        let clip = h1.copy(start, len).unwrap();
        let expected: String = src_text.chars().skip(start).take(len).collect();
        prop_assert_eq!(clip.text(), expected.clone());

        let mut h2 = tdb.open(d2, user).unwrap();
        h2.paste(0, &clip).unwrap();
        prop_assert_eq!(h2.text(), expected);
        for pos in 0..len {
            let meta = h2.char_meta(pos).unwrap();
            let copied_from_src = matches!(
                meta.provenance,
                tendax_text::Provenance::CopiedFrom { doc, .. } if doc == d1
            );
            prop_assert!(copied_from_src);
        }
    }

    /// Two handles kept in sync via effect broadcast always converge.
    #[test]
    fn effect_broadcast_converges(script in proptest::collection::vec(arb_edit(), 1..25)) {
        let tdb = TextDb::in_memory();
        let alice = tdb.create_user("alice").unwrap();
        let bob = tdb.create_user("bob").unwrap();
        let doc = tdb.create_document("d", alice).unwrap();
        let mut ha = tdb.open(doc, alice).unwrap();
        let mut hb = tdb.open(doc, bob).unwrap();

        for (i, op) in script.into_iter().enumerate() {
            // Alternate which editor acts.
            let (actor, watcher) = if i % 2 == 0 {
                (&mut ha, &mut hb)
            } else {
                (&mut hb, &mut ha)
            };
            let receipt = match op {
                EditOp::Insert(p, text) => {
                    let pos = p % (actor.len() + 1);
                    actor.insert_text(pos, &text).unwrap()
                }
                EditOp::Delete(p, n) => {
                    let len = actor.len();
                    if len == 0 {
                        continue;
                    }
                    let pos = p % len;
                    let n = n.min(len - pos);
                    if n == 0 {
                        continue;
                    }
                    actor.delete_range(pos, n).unwrap()
                }
                EditOp::Undo => match actor.undo() {
                    Ok(r) => r,
                    Err(_) => continue,
                },
                EditOp::Redo => match actor.redo() {
                    Ok(r) => r,
                    Err(_) => continue,
                },
            };
            watcher.apply_remote(&receipt.effects).unwrap();
            prop_assert_eq!(ha.text(), hb.text());
        }
    }
}
