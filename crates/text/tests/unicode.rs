//! Unicode behaviour of the character-tuple model.
//!
//! TeNDaX stores one Unicode scalar value per tuple. These tests pin the
//! semantics for multi-byte scalars (CJK, emoji), combining marks (which
//! are separate tuples — positions are scalar positions, not grapheme
//! positions), and mixed scripts, through the full stack including
//! undo, copy-paste and reload.

use tendax_text::TextDb;

fn setup() -> (TextDb, tendax_text::UserId, tendax_text::DocId) {
    let tdb = TextDb::in_memory();
    let u = tdb.create_user("u").unwrap();
    let d = tdb.create_document("d", u).unwrap();
    (tdb, u, d)
}

#[test]
fn multibyte_scalars_roundtrip() {
    let (tdb, u, d) = setup();
    let mut h = tdb.open(d, u).unwrap();
    let text = "héllo wörld — 日本語 🦀 emoji";
    h.insert_text(0, text).unwrap();
    assert_eq!(h.text(), text);
    assert_eq!(h.len(), text.chars().count());
    // Reload from raw tuples.
    let h2 = tdb.open(d, u).unwrap();
    assert_eq!(h2.text(), text);
}

#[test]
fn positions_are_scalar_positions() {
    let (tdb, u, d) = setup();
    let mut h = tdb.open(d, u).unwrap();
    h.insert_text(0, "a🦀b").unwrap();
    assert_eq!(h.len(), 3); // one scalar each
    h.delete_range(1, 1).unwrap(); // removes the crab
    assert_eq!(h.text(), "ab");
    h.undo().unwrap();
    assert_eq!(h.text(), "a🦀b");
}

#[test]
fn combining_marks_are_separate_tuples() {
    let (tdb, u, d) = setup();
    let mut h = tdb.open(d, u).unwrap();
    // "e" + COMBINING ACUTE ACCENT (decomposed é).
    let decomposed = "e\u{0301}x";
    h.insert_text(0, decomposed).unwrap();
    assert_eq!(h.len(), 3);
    assert_eq!(h.text(), decomposed);
    // Deleting the combining mark alone is possible (scalar granularity).
    h.delete_range(1, 1).unwrap();
    assert_eq!(h.text(), "ex");
}

#[test]
fn copy_paste_preserves_unicode_and_provenance() {
    let (tdb, u, d) = setup();
    let d2 = tdb.create_document("d2", u).unwrap();
    let mut h = tdb.open(d, u).unwrap();
    h.insert_text(0, "中文測試 🦀🚀").unwrap();
    let clip = h.copy(0, 4).unwrap();
    assert_eq!(clip.text(), "中文測試");
    let mut h2 = tdb.open(d2, u).unwrap();
    h2.paste(0, &clip).unwrap();
    assert_eq!(h2.text(), "中文測試");
    let meta = h2.char_meta(0).unwrap();
    assert!(matches!(
        meta.provenance,
        tendax_text::Provenance::CopiedFrom { doc, .. } if doc == d
    ));
}

#[test]
fn mixed_script_editing_with_undo_cycles() {
    let (tdb, u, d) = setup();
    let mut h = tdb.open(d, u).unwrap();
    h.insert_text(0, "abc").unwrap();
    h.insert_text(1, "αβγ").unwrap();
    h.insert_text(4, "一二三").unwrap();
    assert_eq!(h.text(), "aαβγ一二三bc");
    h.delete_range(2, 4).unwrap();
    assert_eq!(h.text(), "aα三bc");
    h.undo().unwrap();
    h.undo().unwrap();
    assert_eq!(h.text(), "aαβγbc");
    h.redo().unwrap();
    assert_eq!(h.text(), "aαβγ一二三bc");
    // Search helpers operate on scalar positions too.
    assert_eq!(h.find("一二", 0), Some(4));
}

#[test]
fn render_markup_handles_unicode_styles() {
    let (tdb, u, d) = setup();
    let bold = tdb.define_style("bold", "w=b", u).unwrap();
    let mut h = tdb.open(d, u).unwrap();
    h.insert_text(0, "日本語 text").unwrap();
    h.apply_style(0, 3, bold).unwrap();
    assert_eq!(h.render_markup().unwrap(), "[s:bold]日本語[/s] text");
}
