//! Collaborative layouting: styles and text structure.
//!
//! Styles are named attribute bundles (defined via
//! [`crate::textdb::TextDb::define_style`]); applying one to a character
//! range is an ordinary logged transaction, so layouting is concurrent,
//! secured and undoable exactly like typing — the subject of the
//! companion paper "Supporting Collaborative Layouting in Word
//! Processing" (Hodel et al., CoopIS 2004).
//!
//! Structure elements (headings, paragraphs, lists) are spans anchored at
//! character ids, stored in the `structure` table.

use tendax_storage::{Row, Value};

use crate::document::DocHandle;
use crate::error::{Result, TextError};
use crate::ids::{CharId, StructId, StyleId, UserId};
use crate::ops::{EditReceipt, Effect};
use crate::security::Permission;

/// A structure element read back from the database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructureInfo {
    pub id: StructId,
    pub kind: String,
    pub from_char: CharId,
    pub to_char: CharId,
    /// Current visible span, if both anchors are visible.
    pub span: Option<(usize, usize)>,
    pub author: UserId,
    pub ts: i64,
}

impl DocHandle {
    /// Apply `style` to the visible range `[pos, pos + len)`.
    pub fn apply_style(&mut self, pos: usize, len: usize, style: StyleId) -> Result<EditReceipt> {
        self.set_style_range(pos, len, style)
    }

    /// Remove any style from the range.
    pub fn clear_style(&mut self, pos: usize, len: usize) -> Result<EditReceipt> {
        self.set_style_range(pos, len, StyleId::NONE)
    }

    fn set_style_range(&mut self, pos: usize, len: usize, style: StyleId) -> Result<EditReceipt> {
        if len == 0 {
            return Ok(EditReceipt {
                op: crate::ids::OpId::NONE,
                commit_ts: 0,
                effects: Vec::new(),
            });
        }
        self.check_range(pos, len)?;
        let ids = self.chain.visible_range(pos, len);
        let t = *self.tdb.tables();
        let mut txn = self.begin();
        self.tdb
            .check_permission_txn(&txn, self.doc, self.user, Permission::Layout)?;
        self.check_protected(&txn, Permission::Write, &ids, None)?;
        let ts = self.tdb.now();
        let mut olds = Vec::with_capacity(ids.len());
        for id in &ids {
            let old = self.cache[id].style;
            olds.push(old);
            let version = self.cache[id].version + 1;
            // Style touches no chain links: described (anchor-free) so it
            // merges with neighbours being spliced around this character.
            // Competing styles of the same character collide on `style`
            // and resolve last-writer-wins by commit order.
            txn.set_with_anchors(
                t.chars,
                id.row(),
                &[
                    ("style", style.opt_value()),
                    ("version", Value::Int(version)),
                ],
                &[],
            )?;
        }
        let op = self.log_op(&mut txn, "style", crate::ids::OpId::NONE, ts)?;
        for (seq, (id, old)) in ids.iter().zip(&olds).enumerate() {
            self.log_effect(
                &mut txn,
                op,
                seq as i64,
                "sty",
                *id,
                Some(old.0.to_string()),
                Some(style.0.to_string()),
            )?;
        }
        let commit_ts = txn.commit()?;
        self.note_commit(commit_ts);

        let mut effects = Vec::with_capacity(ids.len());
        for (id, old) in ids.iter().zip(olds) {
            if let Some(info) = self.cache.get_mut(id) {
                info.style = style;
                info.version += 1;
            }
            effects.push(Effect::SetStyle {
                char: *id,
                old,
                new: style,
            });
        }
        Ok(EditReceipt {
            op,
            commit_ts,
            effects,
        })
    }

    /// Style of the character at `pos`.
    pub fn style_at(&self, pos: usize) -> Option<StyleId> {
        let id = self.chain.id_at_visible(pos)?;
        Some(self.cache[&id].style)
    }

    /// The document as runs of equal style: `(style, run_length)`.
    pub fn style_runs(&self) -> Vec<(StyleId, usize)> {
        let mut runs: Vec<(StyleId, usize)> = Vec::new();
        for id in self.chain.iter_visible() {
            let style = self.cache[&id].style;
            match runs.last_mut() {
                Some((s, n)) if *s == style => *n += 1,
                _ => runs.push((style, 1)),
            }
        }
        runs
    }

    // ----------------------------------------------------------- structure

    /// Mark `[pos, pos + len)` as a structure element (`heading1`,
    /// `paragraph`, `list_item`, …).
    pub fn set_structure(&mut self, pos: usize, len: usize, kind: &str) -> Result<StructId> {
        if len == 0 {
            return Err(TextError::InvalidPosition {
                pos,
                len,
                doc_len: self.len(),
            });
        }
        self.check_range(pos, len)?;
        let from = self.chain.id_at_visible(pos).expect("range checked above");
        let to = self
            .chain
            .id_at_visible(pos + len - 1)
            .expect("range checked above");
        let t = *self.tdb.tables();
        let mut txn = self.begin();
        self.tdb
            .check_permission_txn(&txn, self.doc, self.user, Permission::Layout)?;
        let ts = self.tdb.now();
        let rid = txn.insert(
            t.structure,
            Row::new(vec![
                self.doc.value(),
                Value::Text(kind.to_owned()),
                from.value(),
                to.value(),
                self.user.value(),
                Value::Timestamp(ts),
                Value::Bool(false),
            ]),
        )?;
        let sid = StructId::from_row(rid);
        let op = self.log_op(&mut txn, "structure", crate::ids::OpId::NONE, ts)?;
        self.log_effect(&mut txn, op, 0, "struct", CharId(sid.0), None, None)?;
        txn.commit()?;
        Ok(sid)
    }

    /// All live structure elements, with current visible spans.
    pub fn structures(&self) -> Result<Vec<StructureInfo>> {
        let t = self.tdb.tables();
        let txn = self.begin();
        let rows = txn.index_lookup(t.structure, "structure_by_doc", &[self.doc.value()])?;
        let mut out = Vec::new();
        for (rid, row) in rows {
            if row.get(6).and_then(|v| v.as_bool()).unwrap_or(false) {
                continue; // deleted (e.g. undone)
            }
            let from_char = row.get(2).map(CharId::from_value).unwrap_or(CharId::NONE);
            let to_char = row.get(3).map(CharId::from_value).unwrap_or(CharId::NONE);
            let span = match (
                self.chain.visible_rank(from_char),
                self.chain.visible_rank(to_char),
            ) {
                (Some(a), Some(b)) => Some((a, b)),
                _ => None,
            };
            out.push(StructureInfo {
                id: StructId::from_row(rid),
                kind: row
                    .get(1)
                    .and_then(|v| v.as_text())
                    .unwrap_or_default()
                    .to_owned(),
                from_char,
                to_char,
                span,
                author: row.get(4).map(UserId::from_value).unwrap_or(UserId::NONE),
                ts: row.get(5).and_then(|v| v.as_timestamp()).unwrap_or(0),
            });
        }
        out.sort_by_key(|s| s.span.map(|(a, _)| a).unwrap_or(usize::MAX));
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::textdb::TextDb;

    fn setup() -> (TextDb, UserId, DocHandle) {
        let tdb = TextDb::in_memory();
        let user = tdb.create_user("alice").unwrap();
        let doc = tdb.create_document("d", user).unwrap();
        let mut h = tdb.open(doc, user).unwrap();
        h.insert_text(0, "Title and body text").unwrap();
        (tdb, user, h)
    }

    #[test]
    fn apply_and_read_styles() {
        let (tdb, user, mut h) = setup();
        let bold = tdb.define_style("bold", "weight=bold", user).unwrap();
        h.apply_style(0, 5, bold).unwrap();
        assert_eq!(h.style_at(0), Some(bold));
        assert_eq!(h.style_at(4), Some(bold));
        assert_eq!(h.style_at(5), Some(StyleId::NONE));
        let runs = h.style_runs();
        assert_eq!(runs[0], (bold, 5));
        assert_eq!(runs[1].0, StyleId::NONE);
    }

    #[test]
    fn styles_survive_reload() {
        let (tdb, user, mut h) = setup();
        let bold = tdb.define_style("bold", "weight=bold", user).unwrap();
        h.apply_style(6, 3, bold).unwrap();
        let h2 = tdb.open(h.doc(), user).unwrap();
        assert_eq!(h2.style_at(6), Some(bold));
        assert_eq!(h2.style_at(5), Some(StyleId::NONE));
    }

    #[test]
    fn style_change_is_undoable() {
        let (tdb, user, mut h) = setup();
        let bold = tdb.define_style("bold", "weight=bold", user).unwrap();
        let em = tdb.define_style("em", "style=italic", user).unwrap();
        h.apply_style(0, 3, bold).unwrap();
        h.apply_style(0, 3, em).unwrap();
        h.undo().unwrap();
        assert_eq!(h.style_at(0), Some(bold));
        h.undo().unwrap();
        assert_eq!(h.style_at(0), Some(StyleId::NONE));
        h.redo().unwrap();
        assert_eq!(h.style_at(0), Some(bold));
    }

    #[test]
    fn clear_style_resets() {
        let (tdb, user, mut h) = setup();
        let bold = tdb.define_style("bold", "weight=bold", user).unwrap();
        h.apply_style(0, 5, bold).unwrap();
        h.clear_style(0, 5).unwrap();
        assert_eq!(h.style_at(0), Some(StyleId::NONE));
    }

    #[test]
    fn layout_permission_enforced() {
        let tdb = TextDb::in_memory();
        let alice = tdb.create_user("alice").unwrap();
        let bob = tdb.create_user("bob").unwrap();
        let doc = tdb.create_document("d", alice).unwrap();
        let mut ha = tdb.open(doc, alice).unwrap();
        ha.insert_text(0, "text").unwrap();
        let bold = tdb.define_style("bold", "weight=bold", alice).unwrap();
        tdb.set_access(
            doc,
            alice,
            crate::security::Principal::User(alice),
            Permission::Layout,
            true,
        )
        .unwrap();
        let mut hb = tdb.open(doc, bob).unwrap();
        assert!(matches!(
            hb.apply_style(0, 2, bold),
            Err(TextError::PermissionDenied { .. })
        ));
    }

    #[test]
    fn structure_elements_track_positions() {
        let (_tdb, _user, mut h) = setup();
        let s = h.set_structure(0, 5, "heading1").unwrap();
        let all = h.structures().unwrap();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].id, s);
        assert_eq!(all[0].kind, "heading1");
        assert_eq!(all[0].span, Some((0, 4)));
        // Inserting before the heading shifts its span.
        h.insert_text(0, ">> ").unwrap();
        let all = h.structures().unwrap();
        assert_eq!(all[0].span, Some((3, 7)));
    }

    #[test]
    fn structure_is_undoable() {
        let (_tdb, _user, mut h) = setup();
        h.set_structure(0, 5, "heading1").unwrap();
        assert_eq!(h.structures().unwrap().len(), 1);
        h.undo().unwrap();
        assert_eq!(h.structures().unwrap().len(), 0);
        h.redo().unwrap();
        assert_eq!(h.structures().unwrap().len(), 1);
    }

    #[test]
    fn structure_span_hides_when_anchor_deleted() {
        let (_tdb, _user, mut h) = setup();
        h.set_structure(0, 5, "heading1").unwrap();
        h.delete_range(0, 2).unwrap(); // removes the from anchor
        let all = h.structures().unwrap();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].span, None);
    }
}
