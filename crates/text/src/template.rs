//! Document templates.
//!
//! The paper lists "structure, template, layout …" among the definition
//! metadata TeNDaX manages. A template is a stored blueprint — initial
//! content plus structure elements — from which new documents are
//! instantiated. Instantiation replays the content as ordinary editing
//! transactions, so a templated document is indistinguishable from a
//! hand-typed one (full metadata, undo, lineage).

use tendax_storage::{Row, Value};

use crate::error::{Result, TextError};
use crate::ids::{DocId, UserId};
use crate::textdb::TextDb;

/// Identifier of a stored template.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TemplateId(pub u64);

/// A template as read back from the database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TemplateInfo {
    pub id: TemplateId,
    pub name: String,
    pub author: UserId,
    pub created_at: i64,
    pub content: String,
    /// Structure elements: `(kind, pos, len)` into the content.
    pub structure: Vec<(String, usize, usize)>,
}

impl TextDb {
    /// Store a template. `structure` entries are `(kind, pos, len)`
    /// spans addressed into `content` (validated here).
    pub fn define_template(
        &self,
        name: &str,
        author: UserId,
        content: &str,
        structure: &[(&str, usize, usize)],
    ) -> Result<TemplateId> {
        let content_len = content.chars().count();
        for (kind, pos, len) in structure {
            if *len == 0 || pos + len > content_len {
                return Err(TextError::InvalidPosition {
                    pos: *pos,
                    len: *len,
                    doc_len: content_len,
                });
            }
            debug_assert!(!kind.is_empty());
        }
        let t = self.tables();
        let mut txn = self.database().begin();
        self.require_user(&txn, author)?;
        let rid = txn.insert(
            t.templates,
            Row::new(vec![
                Value::Text(name.to_owned()),
                author.value(),
                Value::Timestamp(self.now()),
                Value::Text(content.to_owned()),
            ]),
        )?;
        for (kind, pos, len) in structure {
            txn.insert(
                t.template_structs,
                Row::new(vec![
                    Value::Id(rid.0),
                    Value::Text((*kind).to_owned()),
                    Value::Int(*pos as i64),
                    Value::Int(*len as i64),
                ]),
            )?;
        }
        txn.commit().map_err(|e| match e {
            tendax_storage::StorageError::UniqueViolation { .. } => {
                TextError::NameTaken(name.to_owned())
            }
            other => other.into(),
        })?;
        Ok(TemplateId(rid.0))
    }

    /// Load a template by name.
    pub fn template_by_name(&self, name: &str) -> Result<TemplateInfo> {
        let t = self.tables();
        let txn = self.database().begin();
        let hits = txn.index_lookup(
            t.templates,
            "templates_by_name",
            &[Value::Text(name.to_owned())],
        )?;
        let (rid, row) = hits
            .into_iter()
            .next()
            .ok_or_else(|| TextError::UnknownDocument(format!("template {name}")))?;
        let mut structure: Vec<(String, usize, usize)> = txn
            .index_lookup(
                t.template_structs,
                "template_structs_by_template",
                &[Value::Id(rid.0)],
            )?
            .into_iter()
            .map(|(_, s)| {
                (
                    s.get(1)
                        .and_then(|v| v.as_text())
                        .unwrap_or_default()
                        .to_owned(),
                    s.get(2).and_then(|v| v.as_int()).unwrap_or(0) as usize,
                    s.get(3).and_then(|v| v.as_int()).unwrap_or(0) as usize,
                )
            })
            .collect();
        structure.sort_by_key(|(_, pos, _)| *pos);
        Ok(TemplateInfo {
            id: TemplateId(rid.0),
            name: row
                .get(0)
                .and_then(|v| v.as_text())
                .unwrap_or_default()
                .to_owned(),
            author: row.get(1).map(UserId::from_value).unwrap_or(UserId::NONE),
            created_at: row.get(2).and_then(|v| v.as_timestamp()).unwrap_or(0),
            content: row
                .get(3)
                .and_then(|v| v.as_text())
                .unwrap_or_default()
                .to_owned(),
            structure,
        })
    }

    /// All templates, by name.
    pub fn list_templates(&self) -> Result<Vec<TemplateInfo>> {
        let t = self.tables();
        let txn = self.database().begin();
        let mut names: Vec<String> = txn
            .scan(t.templates, &tendax_storage::Predicate::True)?
            .into_iter()
            .filter_map(|(_, row)| row.get(0).and_then(|v| v.as_text()).map(str::to_owned))
            .collect();
        names.sort();
        names
            .into_iter()
            .map(|n| self.template_by_name(&n))
            .collect()
    }

    /// Create a new document from a template: the content is typed in as
    /// the creator, and the template's structure elements are applied.
    pub fn create_document_from_template(
        &self,
        doc_name: &str,
        creator: UserId,
        template_name: &str,
    ) -> Result<DocId> {
        let template = self.template_by_name(template_name)?;
        let doc = self.create_document(doc_name, creator)?;
        let mut handle = self.open(doc, creator)?;
        if !template.content.is_empty() {
            handle.insert_text(0, &template.content)?;
        }
        for (kind, pos, len) in &template.structure {
            handle.set_structure(*pos, *len, kind)?;
        }
        Ok(doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (TextDb, UserId) {
        let tdb = TextDb::in_memory();
        let u = tdb.create_user("alice").unwrap();
        (tdb, u)
    }

    #[test]
    fn define_and_instantiate() {
        let (tdb, u) = setup();
        tdb.define_template(
            "report",
            u,
            "Title\n\nIntroduction\n\nConclusion",
            &[
                ("heading1", 0, 5),
                ("heading2", 7, 12),
                ("heading2", 21, 10),
            ],
        )
        .unwrap();
        let doc = tdb
            .create_document_from_template("q1-report", u, "report")
            .unwrap();
        let h = tdb.open(doc, u).unwrap();
        assert_eq!(h.text(), "Title\n\nIntroduction\n\nConclusion");
        let structs = h.structures().unwrap();
        assert_eq!(structs.len(), 3);
        assert_eq!(structs[0].kind, "heading1");
        assert_eq!(structs[0].span, Some((0, 4)));
        assert_eq!(structs[1].span, Some((7, 18)));
        // The content is real, editable text with metadata.
        assert_eq!(h.char_meta(0).unwrap().author, u);
    }

    #[test]
    fn template_lookup_and_listing() {
        let (tdb, u) = setup();
        tdb.define_template("a", u, "aa", &[]).unwrap();
        tdb.define_template("b", u, "bb", &[("para", 0, 2)])
            .unwrap();
        let all = tdb.list_templates().unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].name, "a");
        let b = tdb.template_by_name("b").unwrap();
        assert_eq!(b.structure, vec![("para".to_owned(), 0, 2)]);
        assert!(tdb.template_by_name("ghost").is_err());
    }

    #[test]
    fn duplicate_names_and_bad_spans_rejected() {
        let (tdb, u) = setup();
        tdb.define_template("t", u, "xy", &[]).unwrap();
        assert!(matches!(
            tdb.define_template("t", u, "other", &[]),
            Err(TextError::NameTaken(_))
        ));
        assert!(matches!(
            tdb.define_template("bad", u, "xy", &[("h", 1, 5)]),
            Err(TextError::InvalidPosition { .. })
        ));
        assert!(matches!(
            tdb.define_template("bad", u, "xy", &[("h", 0, 0)]),
            Err(TextError::InvalidPosition { .. })
        ));
    }

    #[test]
    fn empty_template_instantiates_empty_document() {
        let (tdb, u) = setup();
        tdb.define_template("blank", u, "", &[]).unwrap();
        let doc = tdb
            .create_document_from_template("new", u, "blank")
            .unwrap();
        let h = tdb.open(doc, u).unwrap();
        assert!(h.is_empty());
    }
}
