//! Notes: annotations attached to character ranges.

use tendax_storage::{Row, Value};

use crate::document::DocHandle;
use crate::error::{Result, TextError};
use crate::ids::{CharId, NoteId, OpId, UserId};
use crate::security::Permission;

/// A note read back from the database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NoteInfo {
    pub id: NoteId,
    pub from_char: CharId,
    pub to_char: CharId,
    /// Current visible span, if both anchors are visible.
    pub span: Option<(usize, usize)>,
    pub author: UserId,
    pub ts: i64,
    pub text: String,
}

impl DocHandle {
    /// Attach a note to the visible range `[pos, pos + len)`.
    pub fn add_note(&mut self, pos: usize, len: usize, text: &str) -> Result<NoteId> {
        if len == 0 {
            return Err(TextError::InvalidPosition {
                pos,
                len,
                doc_len: self.len(),
            });
        }
        self.check_range(pos, len)?;
        let from = self.chain.id_at_visible(pos).expect("range checked");
        let to = self
            .chain
            .id_at_visible(pos + len - 1)
            .expect("range checked");
        let t = *self.tdb.tables();
        let mut txn = self.begin();
        self.tdb
            .check_permission_txn(&txn, self.doc, self.user, Permission::Annotate)?;
        let ts = self.tdb.now();
        let rid = txn.insert(
            t.notes,
            Row::new(vec![
                self.doc.value(),
                from.value(),
                to.value(),
                self.user.value(),
                Value::Timestamp(ts),
                Value::Text(text.to_owned()),
                Value::Bool(false),
            ]),
        )?;
        let nid = NoteId::from_row(rid);
        let op = self.log_op(&mut txn, "note", OpId::NONE, ts)?;
        self.log_effect(&mut txn, op, 0, "note", CharId(nid.0), None, None)?;
        txn.commit()?;
        Ok(nid)
    }

    /// All live notes on this document, ordered by span start.
    pub fn notes(&self) -> Result<Vec<NoteInfo>> {
        let t = self.tdb.tables();
        let txn = self.begin();
        let rows = txn.index_lookup(t.notes, "notes_by_doc", &[self.doc.value()])?;
        let mut out = Vec::new();
        for (rid, row) in rows {
            if row.get(6).and_then(|v| v.as_bool()).unwrap_or(false) {
                continue;
            }
            let from_char = row.get(1).map(CharId::from_value).unwrap_or(CharId::NONE);
            let to_char = row.get(2).map(CharId::from_value).unwrap_or(CharId::NONE);
            let span = match (
                self.chain.visible_rank(from_char),
                self.chain.visible_rank(to_char),
            ) {
                (Some(a), Some(b)) => Some((a, b)),
                _ => None,
            };
            out.push(NoteInfo {
                id: NoteId::from_row(rid),
                from_char,
                to_char,
                span,
                author: row.get(3).map(UserId::from_value).unwrap_or(UserId::NONE),
                ts: row.get(4).and_then(|v| v.as_timestamp()).unwrap_or(0),
                text: row
                    .get(5)
                    .and_then(|v| v.as_text())
                    .unwrap_or_default()
                    .to_owned(),
            });
        }
        out.sort_by_key(|n| n.span.map(|(a, _)| a).unwrap_or(usize::MAX));
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::textdb::TextDb;

    #[test]
    fn add_and_list_notes() {
        let tdb = TextDb::in_memory();
        let user = tdb.create_user("alice").unwrap();
        let doc = tdb.create_document("d", user).unwrap();
        let mut h = tdb.open(doc, user).unwrap();
        h.insert_text(0, "needs review here").unwrap();
        let n = h.add_note(6, 6, "please check").unwrap();
        let notes = h.notes().unwrap();
        assert_eq!(notes.len(), 1);
        assert_eq!(notes[0].id, n);
        assert_eq!(notes[0].text, "please check");
        assert_eq!(notes[0].span, Some((6, 11)));
        assert_eq!(notes[0].author, user);
    }

    #[test]
    fn note_is_undoable() {
        let tdb = TextDb::in_memory();
        let user = tdb.create_user("alice").unwrap();
        let doc = tdb.create_document("d", user).unwrap();
        let mut h = tdb.open(doc, user).unwrap();
        h.insert_text(0, "text").unwrap();
        h.add_note(0, 4, "nit").unwrap();
        h.undo().unwrap();
        assert!(h.notes().unwrap().is_empty());
        h.redo().unwrap();
        assert_eq!(h.notes().unwrap().len(), 1);
    }

    #[test]
    fn annotate_permission_enforced() {
        let tdb = TextDb::in_memory();
        let alice = tdb.create_user("alice").unwrap();
        let bob = tdb.create_user("bob").unwrap();
        let doc = tdb.create_document("d", alice).unwrap();
        let mut ha = tdb.open(doc, alice).unwrap();
        ha.insert_text(0, "text").unwrap();
        tdb.set_access(
            doc,
            alice,
            crate::security::Principal::User(alice),
            Permission::Annotate,
            true,
        )
        .unwrap();
        let mut hb = tdb.open(doc, bob).unwrap();
        assert!(matches!(
            hb.add_note(0, 2, "x"),
            Err(TextError::PermissionDenied { .. })
        ));
    }

    #[test]
    fn empty_note_range_rejected() {
        let tdb = TextDb::in_memory();
        let user = tdb.create_user("alice").unwrap();
        let doc = tdb.create_document("d", user).unwrap();
        let mut h = tdb.open(doc, user).unwrap();
        h.insert_text(0, "x").unwrap();
        assert!(matches!(
            h.add_note(0, 0, "empty"),
            Err(TextError::InvalidPosition { .. })
        ));
    }
}
