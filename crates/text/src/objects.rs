//! Embedded objects: pictures and tables inside documents.
//!
//! An object is a blob row anchored at an object-replacement character
//! (`U+FFFC`) in the chain. Inserting the anchor and the blob happens in
//! one transaction; deleting the anchor character hides the object, and
//! undo brings both back (the anchor is an ordinary character).

use tendax_storage::Value;

use crate::document::DocHandle;
use crate::error::Result;
use crate::ids::{CharId, ObjectId, UserId};
use crate::ops::{EditReceipt, ObjectPayload};

/// Descriptor of an embedded object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectInfo {
    pub id: ObjectId,
    pub anchor: CharId,
    /// Current visible anchor position (None if the anchor is deleted).
    pub position: Option<usize>,
    pub kind: String,
    pub name: String,
    pub size: usize,
    pub author: UserId,
    pub ts: i64,
}

impl DocHandle {
    /// Embed an object (`kind` is e.g. `"image"` or `"table"`) at `pos`.
    pub fn insert_object(
        &mut self,
        pos: usize,
        kind: &str,
        name: &str,
        data: Vec<u8>,
    ) -> Result<(ObjectId, EditReceipt)> {
        let receipt = self.insert_object_chars(
            pos,
            ObjectPayload {
                kind: kind.to_owned(),
                name: name.to_owned(),
                data,
            },
        )?;
        // The object row was created in the same transaction; find it by
        // its anchor (the single inserted character).
        let anchor = match receipt.effects.first() {
            Some(crate::ops::Effect::Insert { char, .. }) => *char,
            _ => CharId::NONE,
        };
        let t = self.tdb.tables();
        let txn = self.begin();
        let rows = txn.index_lookup(t.objects, "objects_by_doc", &[self.doc.value()])?;
        let id = rows
            .into_iter()
            .find(|(_, row)| row.get(1).map(CharId::from_value) == Some(anchor))
            .map(|(rid, _)| ObjectId::from_row(rid))
            .unwrap_or(ObjectId::NONE);
        Ok((id, receipt))
    }

    /// All objects whose anchor exists in this document (deleted-anchor
    /// objects are listed with `position: None`).
    pub fn objects(&self) -> Result<Vec<ObjectInfo>> {
        let t = self.tdb.tables();
        let txn = self.begin();
        let rows = txn.index_lookup(t.objects, "objects_by_doc", &[self.doc.value()])?;
        let mut out: Vec<ObjectInfo> = rows
            .into_iter()
            .map(|(rid, row)| {
                let anchor = row.get(1).map(CharId::from_value).unwrap_or(CharId::NONE);
                ObjectInfo {
                    id: ObjectId::from_row(rid),
                    anchor,
                    position: self.chain.visible_rank(anchor),
                    kind: row
                        .get(2)
                        .and_then(|v| v.as_text())
                        .unwrap_or_default()
                        .to_owned(),
                    name: row
                        .get(3)
                        .and_then(|v| v.as_text())
                        .unwrap_or_default()
                        .to_owned(),
                    size: row.get(4).and_then(|v| v.as_bytes()).map_or(0, |b| b.len()),
                    author: row.get(5).map(UserId::from_value).unwrap_or(UserId::NONE),
                    ts: row.get(6).and_then(|v| v.as_timestamp()).unwrap_or(0),
                }
            })
            .collect();
        out.sort_by_key(|o| o.position.unwrap_or(usize::MAX));
        Ok(out)
    }

    /// Fetch an object's blob.
    pub fn object_data(&self, id: ObjectId) -> Result<Vec<u8>> {
        let t = self.tdb.tables();
        let txn = self.begin();
        let row = txn
            .get(t.objects, id.row())?
            .ok_or(crate::error::TextError::ChainCorrupt(format!(
                "object {id} missing"
            )))?;
        Ok(row
            .get(4)
            .and_then(|v| match v {
                Value::Bytes(b) => Some(b.clone()),
                _ => None,
            })
            .unwrap_or_default())
    }
}

#[cfg(test)]
mod tests {
    use crate::textdb::TextDb;

    #[test]
    fn insert_and_fetch_object() {
        let tdb = TextDb::in_memory();
        let user = tdb.create_user("alice").unwrap();
        let doc = tdb.create_document("d", user).unwrap();
        let mut h = tdb.open(doc, user).unwrap();
        h.insert_text(0, "before after").unwrap();
        let (id, receipt) = h
            .insert_object(7, "image", "diagram.png", vec![1, 2, 3, 4])
            .unwrap();
        assert!(!id.is_none());
        assert_eq!(receipt.effects.len(), 1);
        assert_eq!(h.len(), 13); // anchor char counts
        assert_eq!(h.text().chars().nth(7), Some('\u{FFFC}'));

        let objs = h.objects().unwrap();
        assert_eq!(objs.len(), 1);
        assert_eq!(objs[0].kind, "image");
        assert_eq!(objs[0].name, "diagram.png");
        assert_eq!(objs[0].position, Some(7));
        assert_eq!(objs[0].size, 4);
        assert_eq!(h.object_data(id).unwrap(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn deleting_anchor_hides_object_and_undo_restores() {
        let tdb = TextDb::in_memory();
        let user = tdb.create_user("alice").unwrap();
        let doc = tdb.create_document("d", user).unwrap();
        let mut h = tdb.open(doc, user).unwrap();
        h.insert_text(0, "x").unwrap();
        h.insert_object(1, "table", "t1", vec![9]).unwrap();
        h.delete_range(1, 1).unwrap();
        assert_eq!(h.objects().unwrap()[0].position, None);
        h.undo().unwrap();
        assert_eq!(h.objects().unwrap()[0].position, Some(1));
        // Undoing the object insertion itself removes the anchor.
        h.undo().unwrap();
        assert_eq!(h.text(), "x");
        assert_eq!(h.objects().unwrap()[0].position, None);
    }

    #[test]
    fn objects_survive_reload() {
        let tdb = TextDb::in_memory();
        let user = tdb.create_user("alice").unwrap();
        let doc = tdb.create_document("d", user).unwrap();
        let mut h = tdb.open(doc, user).unwrap();
        h.insert_object(0, "image", "pic", vec![7; 128]).unwrap();
        let h2 = tdb.open(doc, user).unwrap();
        let objs = h2.objects().unwrap();
        assert_eq!(objs.len(), 1);
        assert_eq!(objs[0].size, 128);
        assert_eq!(objs[0].position, Some(0));
    }
}
