//! The TeNDaX database schema.
//!
//! Everything the editor system persists is an ordinary table in the
//! storage engine — documents, characters, users, roles, access rights,
//! styles, notes, objects, the operation log, read events, paste events
//! and version snapshots. This is the "text as a first-class citizen of
//! the DBMS" part of the paper: there is no opaque blob anywhere; every
//! character is a tuple.

use tendax_storage::{DataType, Database, Result, StorageError, TableDef, TableId};

/// Table ids of the installed TeNDaX schema.
#[derive(Debug, Clone, Copy)]
pub struct Tables {
    pub users: TableId,
    pub roles: TableId,
    pub user_roles: TableId,
    pub documents: TableId,
    pub chars: TableId,
    pub oplog: TableId,
    pub op_effects: TableId,
    pub acl: TableId,
    pub styles: TableId,
    pub structure: TableId,
    pub notes: TableId,
    pub objects: TableId,
    pub reads: TableId,
    pub doc_versions: TableId,
    pub paste_events: TableId,
    pub templates: TableId,
    pub template_structs: TableId,
}

/// Names of every table the text extension owns, in install order.
pub const TABLE_NAMES: [&str; 17] = [
    "users",
    "roles",
    "user_roles",
    "documents",
    "chars",
    "oplog",
    "op_effects",
    "acl",
    "styles",
    "structure",
    "notes",
    "objects",
    "reads",
    "doc_versions",
    "paste_events",
    "templates",
    "template_structs",
];

fn users_def() -> TableDef {
    TableDef::new("users")
        .column("name", DataType::Text)
        .column("created_at", DataType::Timestamp)
        .unique_index("users_by_name", &["name"])
}

fn roles_def() -> TableDef {
    TableDef::new("roles")
        .column("name", DataType::Text)
        .unique_index("roles_by_name", &["name"])
}

fn user_roles_def() -> TableDef {
    TableDef::new("user_roles")
        .column("user", DataType::Id)
        .column("role", DataType::Id)
        .index("user_roles_by_user", &["user"])
        .index("user_roles_by_role", &["role"])
}

fn documents_def() -> TableDef {
    TableDef::new("documents")
        .column("name", DataType::Text)
        .column("creator", DataType::Id)
        .column("created_at", DataType::Timestamp)
        .column("state", DataType::Text)
        .unique_index("documents_by_name", &["name"])
        .index("documents_by_creator", &["creator"])
}

/// The heart of TeNDaX: one tuple per character.
///
/// `prev`/`next` are nullable character references forming a doubly-linked
/// chain per document. Deletion tombstones (`deleted = true`) stay in the
/// chain carrying full metadata — undo, lineage, versioning and mining all
/// read them. Copy-paste provenance lives directly on the character
/// (`src_doc`/`src_char` for internal sources, `external_src` otherwise).
fn chars_def() -> TableDef {
    TableDef::new("chars")
        .column("doc", DataType::Id)
        .nullable_column("prev", DataType::Id)
        .nullable_column("next", DataType::Id)
        .column("ch", DataType::Text)
        .column("author", DataType::Id)
        .column("created_at", DataType::Timestamp)
        .column("version", DataType::Int)
        .column("deleted", DataType::Bool)
        .nullable_column("deleted_by", DataType::Id)
        .nullable_column("deleted_at", DataType::Timestamp)
        .nullable_column("style", DataType::Id)
        .nullable_column("src_doc", DataType::Id)
        .nullable_column("src_char", DataType::Id)
        .nullable_column("external_src", DataType::Text)
        .index("chars_by_doc", &["doc"])
}

/// One row per editing operation (the paper's "real-time transactions").
fn oplog_def() -> TableDef {
    TableDef::new("oplog")
        .column("doc", DataType::Id)
        .column("user", DataType::Id)
        .column("ts", DataType::Timestamp)
        .column("kind", DataType::Text)
        .nullable_column("target", DataType::Id)
        .column("undone", DataType::Bool)
        .index("oplog_by_doc", &["doc"])
        .index("oplog_by_doc_user", &["doc", "user"])
        // Timestamp-suffixed variants: undo/redo walk these newest-first
        // with a descending index cursor instead of scanning the log.
        .index("oplog_by_doc_ts", &["doc", "ts"])
        .index("oplog_by_doc_user_ts", &["doc", "user", "ts"])
}

/// Relational effect list per operation — the undo/redo machinery reads
/// these instead of deserializing opaque payloads.
fn op_effects_def() -> TableDef {
    TableDef::new("op_effects")
        .column("op", DataType::Id)
        .column("seq", DataType::Int)
        .column("kind", DataType::Text)
        .column("char", DataType::Id)
        .nullable_column("old_val", DataType::Text)
        .nullable_column("new_val", DataType::Text)
        .index("op_effects_by_op", &["op"])
        .index("op_effects_by_char", &["char"])
}

/// Fine-grained access rights: whole-document or character-range scoped.
fn acl_def() -> TableDef {
    TableDef::new("acl")
        .column("doc", DataType::Id)
        .column("principal_kind", DataType::Text) // "user" | "role" | "all"
        .column("principal", DataType::Id) // 0 for "all"
        .column("perm", DataType::Text)
        .column("allow", DataType::Bool)
        .nullable_column("from_char", DataType::Id)
        .nullable_column("to_char", DataType::Id)
        .index("acl_by_doc", &["doc"])
}

fn styles_def() -> TableDef {
    TableDef::new("styles")
        .column("name", DataType::Text)
        .column("attrs", DataType::Text)
        .column("author", DataType::Id)
        .column("created_at", DataType::Timestamp)
        .unique_index("styles_by_name", &["name"])
}

fn structure_def() -> TableDef {
    TableDef::new("structure")
        .column("doc", DataType::Id)
        .column("kind", DataType::Text)
        .column("from_char", DataType::Id)
        .column("to_char", DataType::Id)
        .column("author", DataType::Id)
        .column("ts", DataType::Timestamp)
        .column("deleted", DataType::Bool)
        .index("structure_by_doc", &["doc"])
}

fn notes_def() -> TableDef {
    TableDef::new("notes")
        .column("doc", DataType::Id)
        .column("from_char", DataType::Id)
        .column("to_char", DataType::Id)
        .column("author", DataType::Id)
        .column("ts", DataType::Timestamp)
        .column("text", DataType::Text)
        .column("deleted", DataType::Bool)
        .index("notes_by_doc", &["doc"])
}

/// Embedded objects (pictures, tables) anchored at a character.
fn objects_def() -> TableDef {
    TableDef::new("objects")
        .column("doc", DataType::Id)
        .column("anchor", DataType::Id)
        .column("kind", DataType::Text)
        .column("name", DataType::Text)
        .column("data", DataType::Bytes)
        .column("author", DataType::Id)
        .column("ts", DataType::Timestamp)
        .index("objects_by_doc", &["doc"])
}

/// Read events: who opened which document when (feeds dynamic folders and
/// "most read" ranking).
fn reads_def() -> TableDef {
    TableDef::new("reads")
        .column("doc", DataType::Id)
        .column("user", DataType::Id)
        .column("ts", DataType::Timestamp)
        .index("reads_by_doc", &["doc"])
        .index("reads_by_user", &["user"])
}

fn doc_versions_def() -> TableDef {
    TableDef::new("doc_versions")
        .column("doc", DataType::Id)
        .column("name", DataType::Text)
        .column("author", DataType::Id)
        .column("ts", DataType::Timestamp)
        .column("content", DataType::Text)
        .index("doc_versions_by_doc", &["doc"])
}

/// Copy-paste provenance events, the raw material of data lineage (Fig. 1).
fn paste_events_def() -> TableDef {
    TableDef::new("paste_events")
        .column("target_doc", DataType::Id)
        .column("user", DataType::Id)
        .column("ts", DataType::Timestamp)
        .nullable_column("src_doc", DataType::Id)
        .nullable_column("external", DataType::Text)
        .column("n_chars", DataType::Int)
        .index("paste_events_by_target", &["target_doc"])
        .index("paste_events_by_src", &["src_doc"])
}

/// Document blueprints: initial content plus structure elements.
fn templates_def() -> TableDef {
    TableDef::new("templates")
        .column("name", DataType::Text)
        .column("author", DataType::Id)
        .column("created_at", DataType::Timestamp)
        .column("content", DataType::Text)
        .unique_index("templates_by_name", &["name"])
}

/// Structure elements of a template, addressed by character positions
/// into the template content.
fn template_structs_def() -> TableDef {
    TableDef::new("template_structs")
        .column("template", DataType::Id)
        .column("kind", DataType::Text)
        .column("pos", DataType::Int)
        .column("len", DataType::Int)
        .index("template_structs_by_template", &["template"])
}

fn all_defs() -> Vec<TableDef> {
    vec![
        users_def(),
        roles_def(),
        user_roles_def(),
        documents_def(),
        chars_def(),
        oplog_def(),
        op_effects_def(),
        acl_def(),
        styles_def(),
        structure_def(),
        notes_def(),
        objects_def(),
        reads_def(),
        doc_versions_def(),
        paste_events_def(),
        templates_def(),
        template_structs_def(),
    ]
}

impl Tables {
    /// Install the TeNDaX schema into `db` (idempotent: existing tables
    /// are reused), returning the resolved table ids.
    pub fn install(db: &Database) -> Result<Tables> {
        for def in all_defs() {
            match db.create_table(def) {
                Ok(_) => {}
                Err(StorageError::TableExists(_)) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(Tables {
            users: db.table_id("users")?,
            roles: db.table_id("roles")?,
            user_roles: db.table_id("user_roles")?,
            documents: db.table_id("documents")?,
            chars: db.table_id("chars")?,
            oplog: db.table_id("oplog")?,
            op_effects: db.table_id("op_effects")?,
            acl: db.table_id("acl")?,
            styles: db.table_id("styles")?,
            structure: db.table_id("structure")?,
            notes: db.table_id("notes")?,
            objects: db.table_id("objects")?,
            reads: db.table_id("reads")?,
            doc_versions: db.table_id("doc_versions")?,
            paste_events: db.table_id("paste_events")?,
            templates: db.table_id("templates")?,
            template_structs: db.table_id("template_structs")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tendax_storage::Database;

    #[test]
    fn install_creates_all_tables() {
        let db = Database::open_in_memory();
        let _t = Tables::install(&db).unwrap();
        let names = db.table_names();
        for expected in TABLE_NAMES {
            assert!(names.iter().any(|n| n == expected), "missing {expected}");
        }
        assert_eq!(names.len(), TABLE_NAMES.len());
    }

    #[test]
    fn install_is_idempotent() {
        let db = Database::open_in_memory();
        let a = Tables::install(&db).unwrap();
        let b = Tables::install(&db).unwrap();
        assert_eq!(a.chars, b.chars);
        assert_eq!(a.documents, b.documents);
        assert_eq!(db.table_names().len(), TABLE_NAMES.len());
    }

    #[test]
    fn chars_schema_has_provenance_columns() {
        let db = Database::open_in_memory();
        let t = Tables::install(&db).unwrap();
        let def = db.table_def(t.chars).unwrap();
        for col in [
            "prev",
            "next",
            "src_doc",
            "src_char",
            "external_src",
            "deleted",
        ] {
            assert!(def.column_position(col).is_some(), "missing column {col}");
        }
    }
}
