//! Named document versions.
//!
//! Every character already carries its own version history (tombstones +
//! the operation log); named versions add user-facing snapshots: "submit
//! draft", "as reviewed", … A snapshot stores the visible text at capture
//! time; restoring replays it as ordinary (undoable) editing operations.

use tendax_storage::{Row, Value};

use crate::document::DocHandle;
use crate::error::{Result, TextError};
use crate::ids::{UserId, VersionId};
use crate::ops::EditReceipt;

/// A named snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionInfo {
    pub id: VersionId,
    pub name: String,
    pub author: UserId,
    pub ts: i64,
    pub size: usize,
}

impl DocHandle {
    /// Capture the current visible text as a named version.
    pub fn save_version(&self, name: &str) -> Result<VersionId> {
        let t = self.tdb.tables();
        let mut txn = self.begin();
        let rid = txn.insert(
            t.doc_versions,
            Row::new(vec![
                self.doc.value(),
                Value::Text(name.to_owned()),
                self.user.value(),
                Value::Timestamp(self.tdb.now()),
                Value::Text(self.text()),
            ]),
        )?;
        txn.commit()?;
        Ok(VersionId::from_row(rid))
    }

    /// All saved versions, oldest first.
    pub fn versions(&self) -> Result<Vec<VersionInfo>> {
        let t = self.tdb.tables();
        let txn = self.begin();
        let mut out: Vec<VersionInfo> = txn
            .index_lookup(t.doc_versions, "doc_versions_by_doc", &[self.doc.value()])?
            .into_iter()
            .map(|(rid, row)| VersionInfo {
                id: VersionId::from_row(rid),
                name: row
                    .get(1)
                    .and_then(|v| v.as_text())
                    .unwrap_or_default()
                    .to_owned(),
                author: row.get(2).map(UserId::from_value).unwrap_or(UserId::NONE),
                ts: row.get(3).and_then(|v| v.as_timestamp()).unwrap_or(0),
                size: row
                    .get(4)
                    .and_then(|v| v.as_text())
                    .map_or(0, |s| s.chars().count()),
            })
            .collect();
        out.sort_by_key(|v| v.ts);
        Ok(out)
    }

    /// The text captured under `name` (newest version with that name).
    pub fn version_content(&self, name: &str) -> Result<String> {
        let t = self.tdb.tables();
        let txn = self.begin();
        let rows = txn.index_lookup(t.doc_versions, "doc_versions_by_doc", &[self.doc.value()])?;
        rows.into_iter()
            .filter(|(_, row)| row.get(1).and_then(|v| v.as_text()) == Some(name))
            .max_by_key(|(_, row)| row.get(3).and_then(|v| v.as_timestamp()).unwrap_or(0))
            .and_then(|(_, row)| row.get(4).and_then(|v| v.as_text()).map(str::to_owned))
            .ok_or_else(|| TextError::UnknownVersion(name.to_owned()))
    }

    /// Replace the document's content with the named version. Issued as a
    /// delete + insert, so it is undoable like any other edit.
    pub fn restore_version(&mut self, name: &str) -> Result<EditReceipt> {
        let content = self.version_content(name)?;
        let len = self.len();
        if len > 0 {
            self.delete_range(0, len)?;
        }
        self.insert_text(0, &content)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::textdb::TextDb;

    #[test]
    fn save_list_and_restore() {
        let tdb = TextDb::in_memory();
        let user = tdb.create_user("alice").unwrap();
        let doc = tdb.create_document("d", user).unwrap();
        let mut h = tdb.open(doc, user).unwrap();
        h.insert_text(0, "version one").unwrap();
        h.save_version("v1").unwrap();
        h.replace_range(8, 3, "two").unwrap();
        h.save_version("v2").unwrap();
        assert_eq!(h.text(), "version two");

        let versions = h.versions().unwrap();
        assert_eq!(versions.len(), 2);
        assert_eq!(versions[0].name, "v1");
        assert_eq!(versions[0].size, 11);
        assert_eq!(h.version_content("v1").unwrap(), "version one");

        h.restore_version("v1").unwrap();
        assert_eq!(h.text(), "version one");
        // Restore is undoable (undo the insert, then the delete).
        h.undo().unwrap();
        h.undo().unwrap();
        assert_eq!(h.text(), "version two");
    }

    #[test]
    fn unknown_version_errors() {
        let tdb = TextDb::in_memory();
        let user = tdb.create_user("alice").unwrap();
        let doc = tdb.create_document("d", user).unwrap();
        let mut h = tdb.open(doc, user).unwrap();
        assert!(matches!(
            h.restore_version("ghost"),
            Err(TextError::UnknownVersion(_))
        ));
    }

    #[test]
    fn restore_into_empty_document() {
        let tdb = TextDb::in_memory();
        let user = tdb.create_user("alice").unwrap();
        let doc = tdb.create_document("d", user).unwrap();
        let mut h = tdb.open(doc, user).unwrap();
        h.save_version("empty").unwrap();
        h.insert_text(0, "content").unwrap();
        h.restore_version("empty").unwrap();
        assert_eq!(h.text(), "");
    }
}
