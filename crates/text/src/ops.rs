//! Editing operations as real-time database transactions.
//!
//! Every editor action — typing, deleting, pasting — is one ACID
//! transaction against the character tables. Insertions address a
//! *neighbour character id*, not an integer offset, so concurrent edits at
//! different positions touch disjoint rows and commit without conflict;
//! edits racing for the same position conflict on the shared neighbour row
//! and the loser retries against the fresh snapshot. This is the paper's
//! substitute for OT/CRDT machinery: the DBMS serializes everything.
//!
//! Each operation also writes one `oplog` row plus relational `op_effects`
//! rows (consumed by undo/redo) and, for pastes, a `paste_events` row
//! (consumed by data lineage).

use tendax_storage::{Row, Transaction, Ts, Value};

use crate::document::{CharInfo, DocHandle};
use crate::error::{Result, TextError};
use crate::ids::{CharId, DocId, OpId, StyleId, UserId};
use crate::security::{self, Permission};

/// Operation kinds that undo treats as undoable edits.
pub const EDIT_KINDS: [&str; 8] = [
    "insert",
    "delete",
    "paste",
    "style",
    "structure",
    "note",
    "object",
    "restore",
];

/// A committed operation's observable effect, used for undo bookkeeping,
/// editor cache maintenance, and collaboration broadcast.
#[derive(Debug, Clone, PartialEq)]
pub enum Effect {
    Insert {
        char: CharId,
        /// Chain predecessor at commit time (`None` = document head).
        prev: Option<CharId>,
        ch: char,
        author: UserId,
        ts: i64,
        style: StyleId,
        src_doc: DocId,
        src_char: CharId,
        external: Option<String>,
    },
    Delete {
        char: CharId,
        by: UserId,
        ts: i64,
    },
    Undelete {
        char: CharId,
    },
    SetStyle {
        char: CharId,
        old: StyleId,
        new: StyleId,
    },
}

/// Result of a successful editing transaction.
#[derive(Debug, Clone, PartialEq)]
pub struct EditReceipt {
    pub op: OpId,
    pub commit_ts: Ts,
    pub effects: Vec<Effect>,
}

impl EditReceipt {
    fn empty() -> Self {
        EditReceipt {
            op: OpId::NONE,
            commit_ts: 0,
            effects: Vec::new(),
        }
    }
}

/// A copied span: the source characters with their ids (provenance).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clip {
    pub src_doc: DocId,
    pub chars: Vec<(CharId, char)>,
}

impl Clip {
    pub fn text(&self) -> String {
        self.chars.iter().map(|(_, c)| *c).collect()
    }

    pub fn len(&self) -> usize {
        self.chars.len()
    }

    pub fn is_empty(&self) -> bool {
        self.chars.is_empty()
    }
}

/// What a new character carries besides its glyph.
struct NewChar {
    ch: char,
    src_doc: DocId,
    src_char: CharId,
    external: Option<String>,
}

struct PasteEventInfo {
    src_doc: DocId,
    external: Option<String>,
    n_chars: usize,
}

/// Payload of an embedded object, written in the same transaction as its
/// anchor character.
pub(crate) struct ObjectPayload {
    pub kind: String,
    pub name: String,
    pub data: Vec<u8>,
}

impl DocHandle {
    // ------------------------------------------------------------- writing

    /// Type `text` at visible position `pos`.
    pub fn insert_text(&mut self, pos: usize, text: &str) -> Result<EditReceipt> {
        let chars: Vec<NewChar> = text
            .chars()
            .map(|ch| NewChar {
                ch,
                src_doc: DocId::NONE,
                src_char: CharId::NONE,
                external: None,
            })
            .collect();
        self.insert_chars(pos, chars, "insert", None, None)
    }

    /// Copy `[pos, pos + len)` — reads the local committed cache, no
    /// transaction needed.
    pub fn copy(&self, pos: usize, len: usize) -> Result<Clip> {
        self.check_range(pos, len)?;
        let chars = self
            .chain
            .visible_range(pos, len)
            .into_iter()
            .map(|id| (id, self.cache[&id].ch))
            .collect();
        Ok(Clip {
            src_doc: self.doc,
            chars,
        })
    }

    /// Paste a clip at `pos`, recording per-character provenance and a
    /// paste event (the raw material of data lineage, Fig. 1 of the
    /// paper).
    pub fn paste(&mut self, pos: usize, clip: &Clip) -> Result<EditReceipt> {
        let chars: Vec<NewChar> = clip
            .chars
            .iter()
            .map(|(src_char, ch)| NewChar {
                ch: *ch,
                src_doc: clip.src_doc,
                src_char: *src_char,
                external: None,
            })
            .collect();
        let n = chars.len();
        self.insert_chars(
            pos,
            chars,
            "paste",
            Some(PasteEventInfo {
                src_doc: clip.src_doc,
                external: None,
                n_chars: n,
            }),
            None,
        )
    }

    /// Paste text originating outside TeNDaX (another application, the
    /// web, …), tagged with its external source.
    pub fn paste_external(&mut self, pos: usize, text: &str, source: &str) -> Result<EditReceipt> {
        let chars: Vec<NewChar> = text
            .chars()
            .map(|ch| NewChar {
                ch,
                src_doc: DocId::NONE,
                src_char: CharId::NONE,
                external: Some(source.to_owned()),
            })
            .collect();
        let n = chars.len();
        self.insert_chars(
            pos,
            chars,
            "paste",
            Some(PasteEventInfo {
                src_doc: DocId::NONE,
                external: Some(source.to_owned()),
                n_chars: n,
            }),
            None,
        )
    }

    /// Delete `[pos, pos + len)`. Characters become tombstones: their
    /// metadata (author, lineage, undo state) survives deletion.
    pub fn delete_range(&mut self, pos: usize, len: usize) -> Result<EditReceipt> {
        if len == 0 {
            return Ok(EditReceipt::empty());
        }
        self.check_range(pos, len)?;
        let ids = self.chain.visible_range(pos, len);
        let t = *self.tdb.tables();
        let mut txn = self.begin();
        self.tdb
            .check_permission_txn(&txn, self.doc, self.user, Permission::Write)?;
        self.check_protected(&txn, Permission::Write, &ids, None)?;
        let ts = self.tdb.now();
        for id in &ids {
            let version = self.cache[id].version + 1;
            // A tombstone touches only the deletion flags, never the
            // chain links: described (with no anchors) so it commutes
            // with a neighbour splicing around this character. Two
            // deletes of the same character still collide on `deleted`.
            txn.set_with_anchors(
                t.chars,
                id.row(),
                &[
                    ("deleted", Value::Bool(true)),
                    ("deleted_by", self.user.value()),
                    ("deleted_at", Value::Timestamp(ts)),
                    ("version", Value::Int(version)),
                ],
                &[],
            )?;
        }
        let op = self.log_op(&mut txn, "delete", OpId::NONE, ts)?;
        for (seq, id) in ids.iter().enumerate() {
            self.log_effect(&mut txn, op, seq as i64, "del", *id, None, None)?;
        }
        let commit_ts = txn.commit()?;
        self.note_commit(commit_ts);

        let mut effects = Vec::with_capacity(ids.len());
        for id in ids {
            self.chain.set_visible(id, false);
            if let Some(info) = self.cache.get_mut(&id) {
                info.deleted = true;
                info.version += 1;
            }
            effects.push(Effect::Delete {
                char: id,
                by: self.user,
                ts,
            });
        }
        Ok(EditReceipt {
            op,
            commit_ts,
            effects,
        })
    }

    /// Atomically move `[pos, pos + len)` from this document into
    /// `dst` at `dst_pos` — delete, insert, provenance stamping and both
    /// operation-log entries commit in **one** transaction. A file-based
    /// editor cannot do this; a database-based one gets it for free
    /// (either both documents change or neither does).
    ///
    /// Returns `(delete_receipt, insert_receipt)` for the source and
    /// destination respectively.
    pub fn move_to(
        &mut self,
        pos: usize,
        len: usize,
        dst: &mut DocHandle,
        dst_pos: usize,
    ) -> Result<(EditReceipt, EditReceipt)> {
        if len == 0 {
            return Ok((EditReceipt::empty(), EditReceipt::empty()));
        }
        self.check_range(pos, len)?;
        if dst_pos > dst.len() {
            return Err(TextError::InvalidPosition {
                pos: dst_pos,
                len,
                doc_len: dst.len(),
            });
        }
        let src_ids = self.chain.visible_range(pos, len);
        let moved: Vec<(CharId, char)> =
            src_ids.iter().map(|id| (*id, self.cache[id].ch)).collect();
        let t = *self.tdb.tables();

        // Destination anchors (same logic as insert_chars).
        let dst_prev = if dst_pos == 0 {
            None
        } else {
            dst.chain.id_at_visible(dst_pos - 1)
        };
        let dst_total = match dst_prev {
            None => 0,
            Some(a) => {
                dst.chain
                    .total_rank(a)
                    .ok_or_else(|| TextError::ChainCorrupt(format!("anchor {a} lost")))?
                    + 1
            }
        };
        let dst_next = dst.chain.id_at_total(dst_total);

        let mut txn = self.begin();
        self.tdb
            .check_permission_txn(&txn, self.doc, self.user, Permission::Write)?;
        self.tdb
            .check_permission_txn(&txn, dst.doc, dst.user, Permission::Write)?;
        self.check_protected(&txn, Permission::Write, &src_ids, None)?;
        dst.check_protected(&txn, Permission::Write, &[], Some(dst_total))?;
        // Destination anchor validation (same stale-view rules as insert).
        let stale = || TextError::StaleView(dst.doc);
        match dst_prev {
            Some(p) => {
                let row = txn.get(t.chars, p.row())?.ok_or_else(stale)?;
                let db_next = row.get(2).map(CharId::from_value).unwrap_or(CharId::NONE);
                if db_next != dst_next.unwrap_or(CharId::NONE) {
                    return Err(stale());
                }
            }
            None => match dst_next {
                Some(n) => {
                    let row = txn.get(t.chars, n.row())?.ok_or_else(stale)?;
                    if !row
                        .get(1)
                        .map(CharId::from_value)
                        .unwrap_or(CharId::NONE)
                        .is_none()
                    {
                        return Err(stale());
                    }
                }
                None => {
                    if !txn
                        .index_lookup(t.chars, "chars_by_doc", &[dst.doc.value()])?
                        .is_empty()
                    {
                        return Err(stale());
                    }
                }
            },
        }

        let ts = self.tdb.now();
        // 1) Tombstone the source characters.
        for id in &src_ids {
            let version = self.cache[id].version + 1;
            txn.set_with_anchors(
                t.chars,
                id.row(),
                &[
                    ("deleted", Value::Bool(true)),
                    ("deleted_by", self.user.value()),
                    ("deleted_at", Value::Timestamp(ts)),
                    ("version", Value::Int(version)),
                ],
                &[],
            )?;
        }
        let del_op = self.log_op(&mut txn, "delete", OpId::NONE, ts)?;
        for (seq, id) in src_ids.iter().enumerate() {
            self.log_effect(&mut txn, del_op, seq as i64, "del", *id, None, None)?;
        }

        // 2) Insert copies into the destination with provenance.
        let mut new_ids: Vec<CharId> = Vec::with_capacity(moved.len());
        for (i, (src_char, ch)) in moved.iter().enumerate() {
            let prev_val = if i == 0 {
                dst_prev.map(|p| p.value()).unwrap_or(Value::Null)
            } else {
                new_ids[i - 1].value()
            };
            let rid = txn.insert(
                t.chars,
                Row::new(vec![
                    dst.doc.value(),
                    prev_val,
                    Value::Null,
                    Value::Text(ch.to_string()),
                    dst.user.value(),
                    Value::Timestamp(ts),
                    Value::Int(0),
                    Value::Bool(false),
                    Value::Null,
                    Value::Null,
                    Value::Null,
                    self.doc.value(),
                    src_char.value(),
                    Value::Null,
                ]),
            )?;
            new_ids.push(CharId::from_row(rid));
        }
        for (i, id) in new_ids.iter().enumerate() {
            let next_val = if i + 1 < new_ids.len() {
                new_ids[i + 1].value()
            } else {
                dst_next.map(|n| n.value()).unwrap_or(Value::Null)
            };
            txn.set(t.chars, id.row(), &[("next", next_val)])?;
        }
        match dst_prev {
            Some(p) => {
                txn.set_with_anchors(
                    t.chars,
                    p.row(),
                    &[("next", new_ids[0].value())],
                    &[p.next_edge()],
                )?;
            }
            None => {
                let state = self.tdb.document_info_txn(&txn, dst.doc)?.state;
                txn.set(t.documents, dst.doc.row(), &[("state", Value::Text(state))])?;
            }
        }
        if let Some(n) = dst_next {
            txn.set_with_anchors(
                t.chars,
                n.row(),
                &[("prev", new_ids[new_ids.len() - 1].value())],
                &[n.prev_edge()],
            )?;
        }
        let ins_op = dst.log_op(&mut txn, "paste", OpId::NONE, ts)?;
        for (seq, id) in new_ids.iter().enumerate() {
            dst.log_effect(&mut txn, ins_op, seq as i64, "ins", *id, None, None)?;
        }
        txn.insert(
            t.paste_events,
            Row::new(vec![
                dst.doc.value(),
                dst.user.value(),
                Value::Timestamp(ts),
                self.doc.value(),
                Value::Null,
                Value::Int(moved.len() as i64),
            ]),
        )?;
        let commit_ts = txn.commit()?;
        self.note_commit(commit_ts);
        dst.note_commit(commit_ts);

        // Publish to both caches.
        let mut del_effects = Vec::with_capacity(src_ids.len());
        for id in src_ids {
            self.chain.set_visible(id, false);
            if let Some(info) = self.cache.get_mut(&id) {
                info.deleted = true;
                info.version += 1;
            }
            del_effects.push(Effect::Delete {
                char: id,
                by: self.user,
                ts,
            });
        }
        let mut ins_effects = Vec::with_capacity(new_ids.len());
        let mut anchor = dst_prev;
        let mut dst_stale = false;
        for (i, (src_char, ch)) in moved.into_iter().enumerate() {
            let id = new_ids[i];
            // This runs *after* the commit succeeded: the database holds
            // the edit whatever the cache thinks, so a bad anchor here
            // must not surface as a retryable error (a retry would apply
            // the edit twice). Self-heal by rebuilding the cache below
            // and still return the receipt. For our own just-committed
            // ids this is unreachable — hence the debug_assert.
            let inserted = dst.chain.insert_after(anchor, id, true);
            debug_assert!(
                inserted.is_ok(),
                "own committed insert rejected: {inserted:?}"
            );
            dst_stale |= inserted.is_err();
            dst.cache.insert(
                id,
                CharInfo {
                    ch,
                    deleted: false,
                    style: StyleId::NONE,
                    author: dst.user,
                    created_at: ts,
                    version: 0,
                    src_doc: self.doc,
                    src_char,
                    external_src: None,
                },
            );
            ins_effects.push(Effect::Insert {
                char: id,
                prev: anchor,
                ch,
                author: dst.user,
                ts,
                style: StyleId::NONE,
                src_doc: self.doc,
                src_char,
                external: None,
            });
            anchor = Some(id);
        }
        if dst_stale {
            dst.rebuild()?;
        }
        Ok((
            EditReceipt {
                op: del_op,
                commit_ts,
                effects: del_effects,
            },
            EditReceipt {
                op: ins_op,
                commit_ts,
                effects: ins_effects,
            },
        ))
    }

    /// Replace `[pos, pos + len)` with `text` (delete + insert, two
    /// transactions, each independently undoable — matching how the
    /// TeNDaX editor issued them).
    pub fn replace_range(&mut self, pos: usize, len: usize, text: &str) -> Result<EditReceipt> {
        let mut receipt = self.delete_range(pos, len)?;
        let ins = self.insert_text(pos, text)?;
        receipt.effects.extend(ins.effects);
        receipt.op = ins.op;
        receipt.commit_ts = ins.commit_ts;
        Ok(receipt)
    }

    // ----------------------------------------------------------- internals

    pub(crate) fn insert_object_chars(
        &mut self,
        pos: usize,
        payload: ObjectPayload,
    ) -> Result<EditReceipt> {
        // The object replacement character anchors the object in the text.
        let chars = vec![NewChar {
            ch: '\u{FFFC}',
            src_doc: DocId::NONE,
            src_char: CharId::NONE,
            external: None,
        }];
        self.insert_chars(pos, chars, "object", None, Some(payload))
    }

    fn insert_chars(
        &mut self,
        pos: usize,
        chars: Vec<NewChar>,
        kind: &str,
        paste: Option<PasteEventInfo>,
        object: Option<ObjectPayload>,
    ) -> Result<EditReceipt> {
        let doc_len = self.len();
        if pos > doc_len {
            return Err(TextError::InvalidPosition {
                pos,
                len: chars.len(),
                doc_len,
            });
        }
        if chars.is_empty() {
            return Ok(EditReceipt::empty());
        }
        let t = *self.tdb.tables();

        // Chain anchors, from the committed cache.
        let prev_id = if pos == 0 {
            None
        } else {
            self.chain.id_at_visible(pos - 1)
        };
        let insert_total_pos = match prev_id {
            None => 0,
            Some(a) => {
                self.chain
                    .total_rank(a)
                    .ok_or_else(|| TextError::ChainCorrupt(format!("anchor {a} lost")))?
                    + 1
            }
        };
        let next_id = self.chain.id_at_total(insert_total_pos);

        let mut txn = self.begin();
        self.tdb
            .check_permission_txn(&txn, self.doc, self.user, Permission::Write)?;
        self.check_protected(&txn, Permission::Write, &[], Some(insert_total_pos))?;

        // Optimistic anchor validation: the cache claims `prev_id.next ==
        // next_id` (and symmetrically). If another editor committed at
        // this spot since our last sync, the linkage differs and the edit
        // must be retried against a fresh view — otherwise two chain
        // heads (or a fork) could be created without any row conflict.
        let stale = || TextError::StaleView(self.doc);
        match prev_id {
            Some(p) => {
                let row = txn.get(t.chars, p.row())?.ok_or_else(stale)?;
                let db_next = row.get(2).map(CharId::from_value).unwrap_or(CharId::NONE);
                let expect = next_id.unwrap_or(CharId::NONE);
                if db_next != expect {
                    return Err(stale());
                }
            }
            None => match next_id {
                Some(n) => {
                    let row = txn.get(t.chars, n.row())?.ok_or_else(stale)?;
                    let db_prev = row.get(1).map(CharId::from_value).unwrap_or(CharId::NONE);
                    if !db_prev.is_none() {
                        return Err(stale());
                    }
                }
                None => {
                    // Cache says the document is empty; verify.
                    if !txn
                        .index_lookup(t.chars, "chars_by_doc", &[self.doc.value()])?
                        .is_empty()
                    {
                        return Err(stale());
                    }
                }
            },
        }

        let ts = self.tdb.now();
        // Pass 1: insert rows front-to-back, `prev` known, `next` patched
        // in pass 2 (the write-set merges, so each row commits once).
        let mut ids: Vec<CharId> = Vec::with_capacity(chars.len());
        for (i, nc) in chars.iter().enumerate() {
            let prev_val = if i == 0 {
                prev_id.map(|p| p.value()).unwrap_or(Value::Null)
            } else {
                ids[i - 1].value()
            };
            let rid = txn.insert(
                t.chars,
                Row::new(vec![
                    self.doc.value(),
                    prev_val,
                    Value::Null, // next, patched below
                    Value::Text(nc.ch.to_string()),
                    self.user.value(),
                    Value::Timestamp(ts),
                    Value::Int(0),
                    Value::Bool(false),
                    Value::Null,
                    Value::Null,
                    Value::Null,
                    nc.src_doc.opt_value(),
                    nc.src_char.opt_value(),
                    nc.external
                        .as_ref()
                        .map(|s| Value::Text(s.clone()))
                        .unwrap_or(Value::Null),
                ]),
            )?;
            ids.push(CharId::from_row(rid));
        }
        for (i, id) in ids.iter().enumerate() {
            let next_val = if i + 1 < ids.len() {
                ids[i + 1].value()
            } else {
                next_id.map(|n| n.value()).unwrap_or(Value::Null)
            };
            txn.set(t.chars, id.row(), &[("next", next_val)])?;
        }

        // Relink neighbours. These shared-row writes are what detect
        // same-position races between editors — described with the chain
        // edge they rewrite, so edits in *disjoint* neighborhoods of the
        // same row (one editor splicing before a character, another
        // after it) merge at commit instead of aborting. Same-position
        // inserts still collide on the shared `next` edge, and the
        // first committer's timestamp decides the order (RGA-style).
        match prev_id {
            Some(p) => {
                txn.set_with_anchors(
                    t.chars,
                    p.row(),
                    &[("next", ids[0].value())],
                    &[p.next_edge()],
                )?;
            }
            None => {
                // Head insert: touch the document row so two concurrent
                // head inserts conflict instead of creating two heads.
                let state = self.tdb.document_info_txn(&txn, self.doc)?.state;
                txn.set(
                    t.documents,
                    self.doc.row(),
                    &[("state", Value::Text(state))],
                )?;
            }
        }
        if let Some(n) = next_id {
            txn.set_with_anchors(
                t.chars,
                n.row(),
                &[("prev", ids[ids.len() - 1].value())],
                &[n.prev_edge()],
            )?;
        }

        let op = self.log_op(&mut txn, kind, OpId::NONE, ts)?;
        for (seq, id) in ids.iter().enumerate() {
            self.log_effect(&mut txn, op, seq as i64, "ins", *id, None, None)?;
        }
        if let Some(obj) = &object {
            txn.insert(
                t.objects,
                Row::new(vec![
                    self.doc.value(),
                    ids[0].value(),
                    Value::Text(obj.kind.clone()),
                    Value::Text(obj.name.clone()),
                    Value::Bytes(obj.data.clone()),
                    self.user.value(),
                    Value::Timestamp(ts),
                ]),
            )?;
        }
        if let Some(pe) = &paste {
            txn.insert(
                t.paste_events,
                Row::new(vec![
                    self.doc.value(),
                    self.user.value(),
                    Value::Timestamp(ts),
                    pe.src_doc.opt_value(),
                    pe.external
                        .as_ref()
                        .map(|s| Value::Text(s.clone()))
                        .unwrap_or(Value::Null),
                    Value::Int(pe.n_chars as i64),
                ]),
            )?;
        }
        let commit_ts = txn.commit()?;
        self.note_commit(commit_ts);

        // Publish to the local cache and build broadcast effects.
        let mut effects = Vec::with_capacity(ids.len());
        let mut anchor = prev_id;
        let mut stale = false;
        for (i, nc) in chars.into_iter().enumerate() {
            let id = ids[i];
            // Post-commit: the edit is durable, so cache trouble here is
            // self-healed (rebuild below), never surfaced as retryable —
            // a retry would commit the insert a second time.
            let inserted = self.chain.insert_after(anchor, id, true);
            debug_assert!(
                inserted.is_ok(),
                "own committed insert rejected: {inserted:?}"
            );
            stale |= inserted.is_err();
            self.cache.insert(
                id,
                CharInfo {
                    ch: nc.ch,
                    deleted: false,
                    style: StyleId::NONE,
                    author: self.user,
                    created_at: ts,
                    version: 0,
                    src_doc: nc.src_doc,
                    src_char: nc.src_char,
                    external_src: nc.external.clone(),
                },
            );
            effects.push(Effect::Insert {
                char: id,
                prev: anchor,
                ch: nc.ch,
                author: self.user,
                ts,
                style: StyleId::NONE,
                src_doc: nc.src_doc,
                src_char: nc.src_char,
                external: nc.external,
            });
            anchor = Some(id);
        }
        if stale {
            self.rebuild()?;
        }
        Ok(EditReceipt {
            op,
            commit_ts,
            effects,
        })
    }

    /// Write the oplog row for an operation.
    pub(crate) fn log_op(
        &self,
        txn: &mut Transaction,
        kind: &str,
        target: OpId,
        ts: i64,
    ) -> Result<OpId> {
        let t = self.tdb.tables();
        let rid = txn.insert(
            t.oplog,
            Row::new(vec![
                self.doc.value(),
                self.user.value(),
                Value::Timestamp(ts),
                Value::Text(kind.to_owned()),
                target.opt_value(),
                Value::Bool(false),
            ]),
        )?;
        Ok(OpId::from_row(rid))
    }

    /// Write one relational effect row.
    #[allow(clippy::too_many_arguments)] // mirrors the op_effects schema
    pub(crate) fn log_effect(
        &self,
        txn: &mut Transaction,
        op: OpId,
        seq: i64,
        kind: &str,
        ch: CharId,
        old: Option<String>,
        new: Option<String>,
    ) -> Result<()> {
        let t = self.tdb.tables();
        txn.insert(
            t.op_effects,
            Row::new(vec![
                op.value(),
                Value::Int(seq),
                Value::Text(kind.to_owned()),
                ch.value(),
                old.map(Value::Text).unwrap_or(Value::Null),
                new.map(Value::Text).unwrap_or(Value::Null),
            ]),
        )?;
        Ok(())
    }

    /// Reject the operation if it touches a character range protected
    /// against this user. `ids` are the characters being modified;
    /// `insert_at_total` is the total-order position of an insertion.
    pub(crate) fn check_protected(
        &self,
        txn: &Transaction,
        perm: Permission,
        ids: &[CharId],
        insert_at_total: Option<usize>,
    ) -> Result<()> {
        let info = self.tdb.document_info_txn(txn, self.doc)?;
        let roles = self.tdb.roles_of_txn(txn, self.user)?;
        let rules = security::load_rules(txn, self.tdb.tables(), self.doc)?;
        let denied = security::denied_ranges(&rules, info.creator, self.user, &roles, perm);
        if denied.is_empty() {
            return Ok(());
        }
        for (from, to) in denied {
            let (Some(lo), Some(hi)) = (self.chain.total_rank(from), self.chain.total_rank(to))
            else {
                continue; // protected chars no longer in chain: stale rule
            };
            for id in ids {
                if let Some(r) = self.chain.total_rank(*id) {
                    if r >= lo && r <= hi {
                        return Err(TextError::RangeProtected {
                            doc: self.doc,
                            pos: self.chain.visible_rank(*id).unwrap_or(r),
                        });
                    }
                }
            }
            if let Some(p) = insert_at_total {
                if p > lo && p <= hi {
                    return Err(TextError::RangeProtected {
                        doc: self.doc,
                        pos: p,
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::textdb::TextDb;

    fn setup() -> (TextDb, UserId, DocHandle) {
        let tdb = TextDb::in_memory();
        let user = tdb.create_user("alice").unwrap();
        let doc = tdb.create_document("d", user).unwrap();
        let h = tdb.open(doc, user).unwrap();
        (tdb, user, h)
    }

    #[test]
    fn typing_builds_text() {
        let (_tdb, _u, mut h) = setup();
        h.insert_text(0, "hello").unwrap();
        assert_eq!(h.text(), "hello");
        h.insert_text(5, " world").unwrap();
        assert_eq!(h.text(), "hello world");
        h.insert_text(5, ",").unwrap();
        assert_eq!(h.text(), "hello, world");
        assert_eq!(h.len(), 12);
    }

    #[test]
    fn insert_at_invalid_position_errors() {
        let (_tdb, _u, mut h) = setup();
        assert!(matches!(
            h.insert_text(1, "x"),
            Err(TextError::InvalidPosition { .. })
        ));
    }

    #[test]
    fn empty_insert_is_a_noop() {
        let (_tdb, _u, mut h) = setup();
        let r = h.insert_text(0, "").unwrap();
        assert!(r.effects.is_empty());
        assert!(r.op.is_none());
    }

    #[test]
    fn delete_makes_tombstones() {
        let (_tdb, _u, mut h) = setup();
        h.insert_text(0, "hello world").unwrap();
        h.delete_range(5, 6).unwrap();
        assert_eq!(h.text(), "hello");
        assert_eq!(h.len(), 5);
        // Tombstones remain in the chain with metadata.
        assert_eq!(h.chain_len(), 11);
    }

    #[test]
    fn delete_out_of_bounds_errors() {
        let (_tdb, _u, mut h) = setup();
        h.insert_text(0, "abc").unwrap();
        assert!(matches!(
            h.delete_range(2, 5),
            Err(TextError::InvalidPosition { .. })
        ));
        // Zero-length delete is a no-op.
        let r = h.delete_range(1, 0).unwrap();
        assert!(r.effects.is_empty());
    }

    #[test]
    fn replace_range_works() {
        let (_tdb, _u, mut h) = setup();
        h.insert_text(0, "hello world").unwrap();
        h.replace_range(6, 5, "TeNDaX").unwrap();
        assert_eq!(h.text(), "hello TeNDaX");
    }

    #[test]
    fn reload_reconstructs_from_database() {
        let (tdb, user, mut h) = setup();
        h.insert_text(0, "persistent ").unwrap();
        h.insert_text(11, "text").unwrap();
        h.delete_range(0, 1).unwrap();
        let expect = h.text();
        // A fresh handle rebuilds the chain purely from stored tuples.
        let h2 = tdb.open(h.doc(), user).unwrap();
        assert_eq!(h2.text(), expect);
        assert_eq!(h2.text(), "ersistent text");
    }

    #[test]
    fn character_metadata_is_captured() {
        let (tdb, user, mut h) = setup();
        h.insert_text(0, "ab").unwrap();
        let id = h.char_at(0).unwrap();
        let info = h.char_info(id).unwrap();
        assert_eq!(info.author, user);
        assert!(info.created_at > 0);
        assert!(!info.deleted);
        assert_eq!(info.ch, 'a');
        // And it survives a reload.
        let h2 = tdb.open(h.doc(), user).unwrap();
        assert_eq!(h2.char_info(id).unwrap().author, user);
    }

    #[test]
    fn copy_paste_carries_provenance() {
        let tdb = TextDb::in_memory();
        let u = tdb.create_user("alice").unwrap();
        let d1 = tdb.create_document("src", u).unwrap();
        let d2 = tdb.create_document("dst", u).unwrap();
        let mut h1 = tdb.open(d1, u).unwrap();
        h1.insert_text(0, "original material").unwrap();
        let clip = h1.copy(0, 8).unwrap();
        assert_eq!(clip.text(), "original");

        let mut h2 = tdb.open(d2, u).unwrap();
        h2.insert_text(0, "copy: ").unwrap();
        h2.paste(6, &clip).unwrap();
        assert_eq!(h2.text(), "copy: original");

        let id = h2.char_at(6).unwrap();
        let info = h2.char_info(id).unwrap();
        assert_eq!(info.src_doc, d1);
        assert_eq!(info.src_char, clip.chars[0].0);

        // One paste event was recorded.
        let txn = tdb.database().begin();
        let events = txn
            .scan(tdb.tables().paste_events, &tendax_storage::Predicate::True)
            .unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].1.get(5).unwrap().as_int(), Some(8));
    }

    #[test]
    fn external_paste_records_source() {
        let (tdb, _u, mut h) = setup();
        h.paste_external(0, "from the web", "https://example.org")
            .unwrap();
        assert_eq!(h.text(), "from the web");
        let id = h.char_at(0).unwrap();
        assert_eq!(
            h.char_info(id).unwrap().external_src.as_deref(),
            Some("https://example.org")
        );
        let txn = tdb.database().begin();
        let events = txn
            .scan(tdb.tables().paste_events, &tendax_storage::Predicate::True)
            .unwrap();
        assert_eq!(
            events[0].1.get(4).unwrap().as_text(),
            Some("https://example.org")
        );
    }

    #[test]
    fn atomic_move_across_documents() {
        let tdb = TextDb::in_memory();
        let u = tdb.create_user("alice").unwrap();
        let d1 = tdb.create_document("src", u).unwrap();
        let d2 = tdb.create_document("dst", u).unwrap();
        let mut h1 = tdb.open(d1, u).unwrap();
        h1.insert_text(0, "keep MOVED keep").unwrap();
        let mut h2 = tdb.open(d2, u).unwrap();
        h2.insert_text(0, "[]").unwrap();

        let (del, ins) = h1.move_to(5, 5, &mut h2, 1).unwrap();
        assert_eq!(del.commit_ts, ins.commit_ts, "single transaction");
        assert_eq!(h1.text(), "keep  keep");
        assert_eq!(h2.text(), "[MOVED]");
        // Provenance points back at the source document.
        let meta = h2.char_meta(1).unwrap();
        assert!(matches!(
            meta.provenance,
            crate::meta::Provenance::CopiedFrom { doc, .. } if doc == d1
        ));
        // Fresh handles agree (it all committed).
        assert_eq!(tdb.open(d1, u).unwrap().text(), "keep  keep");
        assert_eq!(tdb.open(d2, u).unwrap().text(), "[MOVED]");
        // Both sides are undoable (they are separate logged ops).
        h2.undo().unwrap();
        assert_eq!(h2.text(), "[]");
        h1.undo().unwrap();
        assert_eq!(h1.text(), "keep MOVED keep");
    }

    #[test]
    fn move_to_is_atomic_under_destination_permission_failure() {
        let tdb = TextDb::in_memory();
        let alice = tdb.create_user("alice").unwrap();
        let bob = tdb.create_user("bob").unwrap();
        let d1 = tdb.create_document("src", bob).unwrap();
        let d2 = tdb.create_document("locked", alice).unwrap();
        tdb.set_access(
            d2,
            alice,
            crate::security::Principal::User(alice),
            Permission::Write,
            true,
        )
        .unwrap();
        let mut h1 = tdb.open(d1, bob).unwrap();
        h1.insert_text(0, "cannot leave").unwrap();
        let mut h2 = tdb.open(d2, bob).unwrap();
        // Bob may edit src but not dst: the whole move must fail with
        // nothing changed anywhere.
        assert!(matches!(
            h1.move_to(0, 6, &mut h2, 0),
            Err(TextError::PermissionDenied { .. })
        ));
        assert_eq!(tdb.open(d1, bob).unwrap().text(), "cannot leave");
        assert_eq!(tdb.open(d2, bob).unwrap().text(), "");
    }

    #[test]
    fn move_within_one_document() {
        let tdb = TextDb::in_memory();
        let u = tdb.create_user("alice").unwrap();
        let d = tdb.create_document("doc", u).unwrap();
        let mut h1 = tdb.open(d, u).unwrap();
        h1.insert_text(0, "abc XYZ").unwrap();
        let mut h2 = tdb.open(d, u).unwrap();
        let (_, _) = h1.move_to(4, 3, &mut h2, 0).unwrap();
        // h2 moved XYZ to the front; h1 tombstoned its copy.
        let fresh = tdb.open(d, u).unwrap();
        assert_eq!(fresh.text(), "XYZabc ");
    }

    #[test]
    fn oplog_and_effects_are_written() {
        let (tdb, _u, mut h) = setup();
        let r = h.insert_text(0, "abc").unwrap();
        assert_eq!(r.effects.len(), 3);
        let txn = tdb.database().begin();
        let ops = txn
            .scan(tdb.tables().oplog, &tendax_storage::Predicate::True)
            .unwrap();
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].1.get(3).unwrap().as_text(), Some("insert"));
        let effects = txn
            .index_lookup(tdb.tables().op_effects, "op_effects_by_op", &[r.op.value()])
            .unwrap();
        assert_eq!(effects.len(), 3);
    }

    #[test]
    fn concurrent_inserts_at_same_position_conflict_and_retry_succeeds() {
        let tdb = TextDb::in_memory();
        let u1 = tdb.create_user("alice").unwrap();
        let u2 = tdb.create_user("bob").unwrap();
        let doc = tdb.create_document("d", u1).unwrap();
        let mut h1 = tdb.open(doc, u1).unwrap();
        h1.insert_text(0, "base").unwrap();

        // Bob opens at the same state, both insert at position 0.
        let mut h2 = tdb.open(doc, u2).unwrap();
        h1.insert_text(0, "A").unwrap();
        // Bob's cached anchors are stale; his transaction must conflict.
        let err = h2.insert_text(0, "B").unwrap_err();
        assert!(err.is_retryable(), "expected retryable conflict, got {err}");
        // After refresh the retry succeeds.
        h2.refresh().unwrap();
        h2.insert_text(0, "B").unwrap();
        let h3 = tdb.open(doc, u1).unwrap();
        assert_eq!(h3.text(), "BAbase");
    }

    #[test]
    fn concurrent_inserts_at_different_positions_commit() {
        let tdb = TextDb::in_memory();
        let u1 = tdb.create_user("alice").unwrap();
        let u2 = tdb.create_user("bob").unwrap();
        let doc = tdb.create_document("d", u1).unwrap();
        let mut h1 = tdb.open(doc, u1).unwrap();
        h1.insert_text(0, "0123456789").unwrap();

        let mut h2 = tdb.open(doc, u2).unwrap();
        // Alice edits near the front, Bob near the back: disjoint rows.
        h1.insert_text(2, "X").unwrap();
        h2.insert_text(8, "Y").unwrap();
        let fresh = tdb.open(doc, u1).unwrap();
        assert_eq!(fresh.text(), "01X234567Y89");
    }

    #[test]
    fn empty_document_head_race_is_serialized() {
        let tdb = TextDb::in_memory();
        let u1 = tdb.create_user("alice").unwrap();
        let u2 = tdb.create_user("bob").unwrap();
        let doc = tdb.create_document("d", u1).unwrap();
        let mut h1 = tdb.open(doc, u1).unwrap();
        let mut h2 = tdb.open(doc, u2).unwrap();
        h1.insert_text(0, "first").unwrap();
        // Bob's head insert must conflict (not silently fork the chain).
        let err = h2.insert_text(0, "second").unwrap_err();
        assert!(err.is_retryable());
        h2.refresh().unwrap();
        h2.insert_text(0, "second").unwrap();
        let fresh = tdb.open(doc, u1).unwrap();
        assert_eq!(fresh.text(), "secondfirst");
    }

    #[test]
    fn apply_remote_effects_syncs_cheaply() {
        let tdb = TextDb::in_memory();
        let u1 = tdb.create_user("alice").unwrap();
        let u2 = tdb.create_user("bob").unwrap();
        let doc = tdb.create_document("d", u1).unwrap();
        let mut h1 = tdb.open(doc, u1).unwrap();
        let mut h2 = tdb.open(doc, u2).unwrap();

        let r1 = h1.insert_text(0, "hello").unwrap();
        h2.apply_remote(&r1.effects).unwrap();
        assert_eq!(h2.text(), "hello");

        let r2 = h2.insert_text(5, "!").unwrap();
        h1.apply_remote(&r2.effects).unwrap();
        assert_eq!(h1.text(), "hello!");

        // Echo of one's own op is harmless.
        h1.apply_remote(&r1.effects).unwrap();
        assert_eq!(h1.text(), "hello!");

        let r3 = h1.delete_range(0, 1).unwrap();
        h2.apply_remote(&r3.effects).unwrap();
        assert_eq!(h2.text(), "ello!");
        h2.apply_remote(&r3.effects).unwrap(); // redelivery is idempotent
        assert_eq!(h2.text(), "ello!");
    }

    #[test]
    fn write_permission_enforced_on_edits() {
        let tdb = TextDb::in_memory();
        let alice = tdb.create_user("alice").unwrap();
        let bob = tdb.create_user("bob").unwrap();
        let doc = tdb.create_document("d", alice).unwrap();
        tdb.set_access(
            doc,
            alice,
            crate::security::Principal::User(alice),
            Permission::Write,
            true,
        )
        .unwrap();
        let mut hb = tdb.open(doc, bob).unwrap();
        assert!(matches!(
            hb.insert_text(0, "nope"),
            Err(TextError::PermissionDenied { .. })
        ));
    }
}
