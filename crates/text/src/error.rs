//! Error types for the text extension.

use std::fmt;

use tendax_storage::StorageError;

use crate::ids::{DocId, UserId};
use crate::security::Permission;

pub type Result<T> = std::result::Result<T, TextError>;

/// Failure modes of the TeNDaX text layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TextError {
    /// Underlying storage failure (including write-write conflicts, which
    /// callers may retry).
    Storage(StorageError),
    /// Named user does not exist.
    UnknownUser(String),
    /// User id does not exist.
    UnknownUserId(UserId),
    /// Named role does not exist.
    UnknownRole(String),
    /// Named document does not exist.
    UnknownDocument(String),
    /// Document id does not exist.
    UnknownDocumentId(DocId),
    /// Named style does not exist.
    UnknownStyle(String),
    /// The user lacks a permission on the document.
    PermissionDenied {
        user: UserId,
        doc: DocId,
        perm: Permission,
    },
    /// The edit touches a protected character range.
    RangeProtected { doc: DocId, pos: usize },
    /// Position/length outside the document.
    InvalidPosition {
        pos: usize,
        len: usize,
        doc_len: usize,
    },
    /// Undo requested but no undoable operation exists.
    NothingToUndo,
    /// Redo requested but no redoable operation exists.
    NothingToRedo,
    /// The handle's cached view no longer matches the database (another
    /// editor committed at the same spot). Refresh and retry.
    StaleView(DocId),
    /// The handle's position cache references a character the chain no
    /// longer agrees on (stale anchor or duplicate insert). Like
    /// [`TextError::StaleView`] this is transient: refresh the cache
    /// from the database and retry.
    StaleCache(DocId),
    /// An optimistic edit was retried to its attempt limit and every
    /// attempt hit a transient conflict. Not itself retryable — the
    /// caller should back off at a coarser granularity. `last` carries
    /// the final attempt's underlying error so the caller can see *what*
    /// kept conflicting, not just that something did.
    RetriesExhausted {
        attempts: usize,
        last: Option<Box<TextError>>,
    },
    /// The character chain in the database is inconsistent.
    ChainCorrupt(String),
    /// A name that must be unique already exists.
    NameTaken(String),
    /// Named version snapshot does not exist.
    UnknownVersion(String),
}

impl TextError {
    /// Whether retrying the operation may succeed (optimistic-concurrency
    /// conflicts are transient; everything else is not).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            TextError::Storage(StorageError::WriteConflict { .. })
                | TextError::StaleView(_)
                | TextError::StaleCache(_)
        )
    }
}

impl fmt::Display for TextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TextError::Storage(e) => write!(f, "storage error: {e}"),
            TextError::UnknownUser(n) => write!(f, "unknown user `{n}`"),
            TextError::UnknownUserId(id) => write!(f, "unknown user {id}"),
            TextError::UnknownRole(n) => write!(f, "unknown role `{n}`"),
            TextError::UnknownDocument(n) => write!(f, "unknown document `{n}`"),
            TextError::UnknownDocumentId(id) => write!(f, "unknown document {id}"),
            TextError::UnknownStyle(n) => write!(f, "unknown style `{n}`"),
            TextError::PermissionDenied { user, doc, perm } => {
                write!(f, "{user} lacks {perm:?} on {doc}")
            }
            TextError::RangeProtected { doc, pos } => {
                write!(f, "position {pos} of {doc} is write-protected")
            }
            TextError::InvalidPosition { pos, len, doc_len } => {
                write!(f, "range {pos}+{len} outside document of length {doc_len}")
            }
            TextError::NothingToUndo => write!(f, "nothing to undo"),
            TextError::NothingToRedo => write!(f, "nothing to redo"),
            TextError::StaleView(doc) => {
                write!(f, "cached view of {doc} is stale; refresh and retry")
            }
            TextError::StaleCache(doc) => {
                write!(
                    f,
                    "position cache of {doc} is incoherent; refresh and retry"
                )
            }
            TextError::RetriesExhausted { attempts, last } => {
                write!(f, "edit still conflicting after {attempts} attempts")?;
                if let Some(last) = last {
                    write!(f, " (last: {last})")?;
                }
                Ok(())
            }
            TextError::ChainCorrupt(msg) => write!(f, "character chain corrupt: {msg}"),
            TextError::NameTaken(n) => write!(f, "name `{n}` already taken"),
            TextError::UnknownVersion(n) => write!(f, "unknown version `{n}`"),
        }
    }
}

impl std::error::Error for TextError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TextError::Storage(e) => Some(e),
            TextError::RetriesExhausted {
                last: Some(last), ..
            } => Some(last.as_ref()),
            _ => None,
        }
    }
}

impl From<StorageError> for TextError {
    fn from(e: StorageError) -> Self {
        TextError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryability() {
        let conflict = TextError::Storage(StorageError::WriteConflict {
            table: "chars".into(),
            txn: tendax_storage::TxnId(1),
        });
        assert!(conflict.is_retryable());
        assert!(TextError::StaleCache(DocId(1)).is_retryable());
        assert!(!TextError::RetriesExhausted {
            attempts: 16,
            last: None
        }
        .is_retryable());
        assert!(!TextError::NothingToUndo.is_retryable());
        assert!(!TextError::Storage(StorageError::UnknownTable("x".into())).is_retryable());
    }

    #[test]
    fn display() {
        let e = TextError::PermissionDenied {
            user: UserId(1),
            doc: DocId(2),
            perm: Permission::Write,
        };
        assert!(e.to_string().contains("Write"));
    }
}
