//! Metadata read APIs.
//!
//! "During document creation process and use, meta data is gathered
//! automatically" — this module is where that metadata comes back out:
//! per-character provenance and authorship, document-level statistics,
//! reader histories. The meta crate's dynamic folders, lineage, mining
//! and search are all built on these queries.

use std::collections::BTreeMap;

use tendax_storage::Predicate;

use crate::document::DocHandle;
use crate::error::Result;
use crate::ids::{CharId, DocId, StyleId, UserId};
use crate::textdb::TextDb;

/// Where a character came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Provenance {
    /// Typed directly into this document.
    Original,
    /// Pasted from another TeNDaX document.
    CopiedFrom { doc: DocId, char: CharId },
    /// Pasted from outside the system.
    External(String),
}

/// Character-level metadata, as the paper lists it: author, date and
/// time, copy-paste references, version, style.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CharMeta {
    pub id: CharId,
    pub ch: char,
    pub author: UserId,
    pub created_at: i64,
    pub version: i64,
    pub style: StyleId,
    pub deleted: bool,
    pub provenance: Provenance,
}

impl DocHandle {
    /// Metadata of the visible character at `pos`.
    pub fn char_meta(&self, pos: usize) -> Option<CharMeta> {
        let id = self.char_at(pos)?;
        let info = self.char_info(id)?;
        let provenance = if let Some(src) = &info.external_src {
            Provenance::External(src.clone())
        } else if !info.src_doc.is_none() {
            Provenance::CopiedFrom {
                doc: info.src_doc,
                char: info.src_char,
            }
        } else {
            Provenance::Original
        };
        Some(CharMeta {
            id,
            ch: info.ch,
            author: info.author,
            created_at: info.created_at,
            version: info.version,
            style: info.style,
            deleted: info.deleted,
            provenance,
        })
    }

    /// Distinct authors of visible characters, with character counts,
    /// largest contribution first.
    pub fn attribution(&self) -> Vec<(UserId, usize)> {
        let mut counts: BTreeMap<UserId, usize> = BTreeMap::new();
        for id in self.chain.iter_visible() {
            *counts.entry(self.cache[&id].author).or_default() += 1;
        }
        let mut out: Vec<(UserId, usize)> = counts.into_iter().collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }
}

/// Document-level statistics derived from stored metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DocStats {
    pub doc: DocId,
    /// Visible characters.
    pub size: usize,
    /// Total character tuples including tombstones.
    pub tuples: usize,
    pub authors: Vec<UserId>,
    pub readers: Vec<UserId>,
    pub ops: usize,
    /// Characters pasted in from other documents.
    pub copied_in: usize,
    /// Characters pasted in from external sources.
    pub external_in: usize,
}

impl TextDb {
    /// Statistics for one document, straight from the metadata tables.
    pub fn doc_stats(&self, doc: DocId) -> Result<DocStats> {
        let t = self.tables();
        let txn = self.database().begin();
        let chars = txn.index_lookup(t.chars, "chars_by_doc", &[doc.value()])?;
        let mut size = 0usize;
        let mut authors: BTreeMap<UserId, ()> = BTreeMap::new();
        let mut copied_in = 0usize;
        let mut external_in = 0usize;
        for (_, row) in &chars {
            let deleted = row.get(7).and_then(|v| v.as_bool()).unwrap_or(false);
            if !deleted {
                size += 1;
            }
            authors.insert(
                row.get(4).map(UserId::from_value).unwrap_or(UserId::NONE),
                (),
            );
            if row.get(11).map(|v| !v.is_null()).unwrap_or(false) {
                copied_in += 1;
            }
            if row.get(13).map(|v| !v.is_null()).unwrap_or(false) {
                external_in += 1;
            }
        }
        let mut readers: Vec<UserId> = txn
            .index_lookup(t.reads, "reads_by_doc", &[doc.value()])?
            .into_iter()
            .filter_map(|(_, row)| row.get(1).map(UserId::from_value))
            .collect();
        readers.sort();
        readers.dedup();
        let ops = txn.count(t.oplog, &Predicate::Eq("doc".into(), doc.value()))?;
        Ok(DocStats {
            doc,
            size,
            tuples: chars.len(),
            authors: authors.into_keys().collect(),
            readers,
            ops,
            copied_in,
            external_in,
        })
    }

    /// Documents `user` has read since `since` (engine-clock timestamp),
    /// newest read first — the paper's canonical dynamic-folder example.
    pub fn docs_read_by(&self, user: UserId, since: i64) -> Result<Vec<(DocId, i64)>> {
        let t = self.tables();
        let txn = self.database().begin();
        let mut latest: BTreeMap<DocId, i64> = BTreeMap::new();
        for (_, row) in txn.index_lookup(t.reads, "reads_by_user", &[user.value()])? {
            let ts = row.get(2).and_then(|v| v.as_timestamp()).unwrap_or(0);
            if ts < since {
                continue;
            }
            let doc = row.get(0).map(DocId::from_value).unwrap_or(DocId::NONE);
            let e = latest.entry(doc).or_insert(ts);
            *e = (*e).max(ts);
        }
        let mut out: Vec<(DocId, i64)> = latest.into_iter().collect();
        out.sort_by_key(|(_, ts)| std::cmp::Reverse(*ts));
        Ok(out)
    }

    /// Total number of read events recorded for a document.
    pub fn read_count(&self, doc: DocId) -> Result<usize> {
        let t = self.tables();
        let txn = self.database().begin();
        Ok(txn
            .index_lookup(t.reads, "reads_by_doc", &[doc.value()])?
            .len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn char_meta_reports_provenance() {
        let tdb = TextDb::in_memory();
        let u = tdb.create_user("alice").unwrap();
        let d1 = tdb.create_document("src", u).unwrap();
        let d2 = tdb.create_document("dst", u).unwrap();
        let mut h1 = tdb.open(d1, u).unwrap();
        h1.insert_text(0, "orig").unwrap();
        let clip = h1.copy(0, 4).unwrap();
        let mut h2 = tdb.open(d2, u).unwrap();
        h2.insert_text(0, "t").unwrap();
        h2.paste(1, &clip).unwrap();
        h2.paste_external(5, "ext", "clipboard").unwrap();

        assert_eq!(h2.char_meta(0).unwrap().provenance, Provenance::Original);
        assert!(matches!(
            h2.char_meta(1).unwrap().provenance,
            Provenance::CopiedFrom { doc, .. } if doc == d1
        ));
        assert_eq!(
            h2.char_meta(5).unwrap().provenance,
            Provenance::External("clipboard".into())
        );
        assert!(h2.char_meta(99).is_none());
    }

    #[test]
    fn attribution_counts_by_author() {
        let tdb = TextDb::in_memory();
        let alice = tdb.create_user("alice").unwrap();
        let bob = tdb.create_user("bob").unwrap();
        let doc = tdb.create_document("d", alice).unwrap();
        let mut ha = tdb.open(doc, alice).unwrap();
        ha.insert_text(0, "aaaa").unwrap();
        let mut hb = tdb.open(doc, bob).unwrap();
        hb.insert_text(4, "bb").unwrap();
        ha.refresh().unwrap();
        let attr = ha.attribution();
        assert_eq!(attr, vec![(alice, 4), (bob, 2)]);
    }

    #[test]
    fn doc_stats_aggregates_metadata() {
        let tdb = TextDb::in_memory();
        let alice = tdb.create_user("alice").unwrap();
        let bob = tdb.create_user("bob").unwrap();
        let d1 = tdb.create_document("src", alice).unwrap();
        let d2 = tdb.create_document("dst", alice).unwrap();
        let mut h1 = tdb.open(d1, alice).unwrap();
        h1.insert_text(0, "material").unwrap();
        let clip = h1.copy(0, 3).unwrap();
        let mut h2 = tdb.open(d2, alice).unwrap();
        h2.insert_text(0, "xy").unwrap();
        h2.paste(2, &clip).unwrap();
        h2.delete_range(0, 1).unwrap();
        let _rb = tdb.open(d2, bob).unwrap();

        let stats = tdb.doc_stats(d2).unwrap();
        assert_eq!(stats.size, 4); // "y" + "mat"
        assert_eq!(stats.tuples, 5);
        assert_eq!(stats.authors, vec![alice]);
        assert_eq!(stats.readers, vec![alice, bob]);
        assert_eq!(stats.copied_in, 3);
        assert_eq!(stats.external_in, 0);
        assert_eq!(stats.ops, 3); // insert, paste, delete
    }

    #[test]
    fn docs_read_by_respects_time_window() {
        let tdb = TextDb::in_memory();
        let u = tdb.create_user("alice").unwrap();
        let d1 = tdb.create_document("a", u).unwrap();
        let d2 = tdb.create_document("b", u).unwrap();
        let _h = tdb.open(d1, u).unwrap();
        let cutoff = tdb.now();
        let _h = tdb.open(d2, u).unwrap();
        let recent = tdb.docs_read_by(u, cutoff).unwrap();
        assert_eq!(recent.len(), 1);
        assert_eq!(recent[0].0, d2);
        let all = tdb.docs_read_by(u, 0).unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(tdb.read_count(d1).unwrap(), 1);
    }
}
