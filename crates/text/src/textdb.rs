//! The `TextDb`: entry point of the text extension.
//!
//! Wraps a [`Database`] with the installed TeNDaX schema and provides
//! user/role administration, document lifecycle, styles, and access-right
//! management. Character-level editing happens through
//! [`crate::document::DocHandle`], obtained via [`TextDb::open`].

use tendax_storage::{Database, Predicate, Row, Transaction, Value};

use crate::error::{Result, TextError};
use crate::ids::{DocId, RoleId, StyleId, UserId};
use crate::schema::Tables;
use crate::security::{self, Permission, Principal};

/// Document descriptor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DocInfo {
    pub id: DocId,
    pub name: String,
    pub creator: UserId,
    pub created_at: i64,
    pub state: String,
}

/// Handle to a TeNDaX-enabled database.
#[derive(Debug, Clone)]
pub struct TextDb {
    db: Database,
    t: Tables,
}

impl TextDb {
    /// Install (or adopt) the TeNDaX schema on `db`.
    pub fn init(db: Database) -> Result<TextDb> {
        let t = Tables::install(&db)?;
        Ok(TextDb { db, t })
    }

    /// Fresh in-memory instance (tests, examples).
    pub fn in_memory() -> TextDb {
        Self::init(Database::open_in_memory()).expect("schema install on empty db cannot fail")
    }

    pub fn database(&self) -> &Database {
        &self.db
    }

    pub fn tables(&self) -> &Tables {
        &self.t
    }

    /// Engine clock timestamp.
    pub fn now(&self) -> i64 {
        self.db.now()
    }

    /// Run `f` with automatic retry on optimistic-concurrency conflicts.
    ///
    /// This is how TeNDaX editors behave: a keystroke transaction that
    /// loses the first-committer race is simply re-executed against the
    /// new snapshot.
    pub fn retrying<T>(&self, attempts: usize, mut f: impl FnMut() -> Result<T>) -> Result<T> {
        let mut last = None;
        for _ in 0..attempts.max(1) {
            match f() {
                Err(e) if e.is_retryable() => last = Some(e),
                other => return other,
            }
        }
        Err(last.expect("loop ran at least once"))
    }

    // -------------------------------------------------------------- users

    /// Register a user.
    pub fn create_user(&self, name: &str) -> Result<UserId> {
        let mut txn = self.db.begin();
        let row = Row::new(vec![
            Value::Text(name.to_owned()),
            Value::Timestamp(self.now()),
        ]);
        let rid = txn.insert(self.t.users, row)?;
        txn.commit().map_err(|e| match e {
            tendax_storage::StorageError::UniqueViolation { .. } => {
                TextError::NameTaken(name.to_owned())
            }
            other => other.into(),
        })?;
        Ok(UserId::from_row(rid))
    }

    pub fn user_by_name(&self, name: &str) -> Result<UserId> {
        let txn = self.db.begin();
        let hits = txn.index_lookup(self.t.users, "users_by_name", &[Value::Text(name.into())])?;
        hits.first()
            .map(|(rid, _)| UserId::from_row(*rid))
            .ok_or_else(|| TextError::UnknownUser(name.to_owned()))
    }

    pub fn user_name(&self, id: UserId) -> Result<String> {
        let txn = self.db.begin();
        let row = txn
            .get(self.t.users, id.row())?
            .ok_or(TextError::UnknownUserId(id))?;
        Ok(row
            .get(0)
            .and_then(|v| v.as_text())
            .unwrap_or_default()
            .to_owned())
    }

    pub(crate) fn require_user(&self, txn: &Transaction, id: UserId) -> Result<()> {
        if txn.get(self.t.users, id.row())?.is_some() {
            Ok(())
        } else {
            Err(TextError::UnknownUserId(id))
        }
    }

    /// All users, `(id, name)`, sorted by id.
    pub fn list_users(&self) -> Result<Vec<(UserId, String)>> {
        let txn = self.db.begin();
        Ok(txn
            .scan(self.t.users, &Predicate::True)?
            .into_iter()
            .map(|(rid, row)| {
                (
                    UserId::from_row(rid),
                    row.get(0)
                        .and_then(|v| v.as_text())
                        .unwrap_or_default()
                        .to_owned(),
                )
            })
            .collect())
    }

    // -------------------------------------------------------------- roles

    pub fn create_role(&self, name: &str) -> Result<RoleId> {
        let mut txn = self.db.begin();
        let rid = txn.insert(self.t.roles, Row::new(vec![Value::Text(name.to_owned())]))?;
        txn.commit().map_err(|e| match e {
            tendax_storage::StorageError::UniqueViolation { .. } => {
                TextError::NameTaken(name.to_owned())
            }
            other => other.into(),
        })?;
        Ok(RoleId::from_row(rid))
    }

    pub fn role_by_name(&self, name: &str) -> Result<RoleId> {
        let txn = self.db.begin();
        let hits = txn.index_lookup(self.t.roles, "roles_by_name", &[Value::Text(name.into())])?;
        hits.first()
            .map(|(rid, _)| RoleId::from_row(*rid))
            .ok_or_else(|| TextError::UnknownRole(name.to_owned()))
    }

    /// Add `user` to `role` (idempotent).
    pub fn assign_role(&self, user: UserId, role: RoleId) -> Result<()> {
        if self.roles_of(user)?.contains(&role) {
            return Ok(());
        }
        let mut txn = self.db.begin();
        self.require_user(&txn, user)?;
        txn.insert(
            self.t.user_roles,
            Row::new(vec![user.value(), role.value()]),
        )?;
        txn.commit()?;
        Ok(())
    }

    /// Remove `user` from `role`.
    pub fn unassign_role(&self, user: UserId, role: RoleId) -> Result<()> {
        let mut txn = self.db.begin();
        let rows = txn.index_lookup(self.t.user_roles, "user_roles_by_user", &[user.value()])?;
        for (rid, row) in rows {
            if row.get(1).map(RoleId::from_value) == Some(role) {
                txn.delete(self.t.user_roles, rid)?;
            }
        }
        txn.commit()?;
        Ok(())
    }

    pub fn roles_of(&self, user: UserId) -> Result<Vec<RoleId>> {
        let txn = self.db.begin();
        self.roles_of_txn(&txn, user)
    }

    pub(crate) fn roles_of_txn(&self, txn: &Transaction, user: UserId) -> Result<Vec<RoleId>> {
        Ok(txn
            .index_lookup(self.t.user_roles, "user_roles_by_user", &[user.value()])?
            .into_iter()
            .filter_map(|(_, row)| row.get(1).map(RoleId::from_value))
            .collect())
    }

    // ---------------------------------------------------------- documents

    /// Create an empty document owned by `creator`.
    pub fn create_document(&self, name: &str, creator: UserId) -> Result<DocId> {
        let mut txn = self.db.begin();
        self.require_user(&txn, creator)?;
        let row = Row::new(vec![
            Value::Text(name.to_owned()),
            creator.value(),
            Value::Timestamp(self.now()),
            Value::Text("draft".to_owned()),
        ]);
        let rid = txn.insert(self.t.documents, row)?;
        txn.commit().map_err(|e| match e {
            tendax_storage::StorageError::UniqueViolation { .. } => {
                TextError::NameTaken(name.to_owned())
            }
            other => other.into(),
        })?;
        Ok(DocId::from_row(rid))
    }

    pub fn document_by_name(&self, name: &str) -> Result<DocId> {
        let txn = self.db.begin();
        let hits = txn.index_lookup(
            self.t.documents,
            "documents_by_name",
            &[Value::Text(name.into())],
        )?;
        hits.first()
            .map(|(rid, _)| DocId::from_row(*rid))
            .ok_or_else(|| TextError::UnknownDocument(name.to_owned()))
    }

    pub fn document_info(&self, doc: DocId) -> Result<DocInfo> {
        let txn = self.db.begin();
        self.document_info_txn(&txn, doc)
    }

    pub(crate) fn document_info_txn(&self, txn: &Transaction, doc: DocId) -> Result<DocInfo> {
        let row = txn
            .get(self.t.documents, doc.row())?
            .ok_or(TextError::UnknownDocumentId(doc))?;
        Ok(DocInfo {
            id: doc,
            name: row
                .get(0)
                .and_then(|v| v.as_text())
                .unwrap_or_default()
                .to_owned(),
            creator: row.get(1).map(UserId::from_value).unwrap_or(UserId::NONE),
            created_at: row.get(2).and_then(|v| v.as_timestamp()).unwrap_or(0),
            state: row
                .get(3)
                .and_then(|v| v.as_text())
                .unwrap_or_default()
                .to_owned(),
        })
    }

    pub fn list_documents(&self) -> Result<Vec<DocInfo>> {
        let txn = self.db.begin();
        let rows = txn.scan(self.t.documents, &Predicate::True)?;
        rows.into_iter()
            .map(|(rid, _)| self.document_info_txn(&txn, DocId::from_row(rid)))
            .collect()
    }

    /// Transition a document's workflow state (`draft`, `review`, `final`, …).
    pub fn set_document_state(&self, doc: DocId, state: &str, user: UserId) -> Result<()> {
        self.check_permission(doc, user, Permission::Write)?;
        let mut txn = self.db.begin();
        txn.set(
            self.t.documents,
            doc.row(),
            &[("state", Value::Text(state.to_owned()))],
        )?;
        txn.commit()?;
        Ok(())
    }

    // ------------------------------------------------------------ security

    /// Check a document-level permission.
    pub fn check_permission(&self, doc: DocId, user: UserId, perm: Permission) -> Result<()> {
        let txn = self.db.begin();
        self.check_permission_txn(&txn, doc, user, perm)
    }

    pub(crate) fn check_permission_txn(
        &self,
        txn: &Transaction,
        doc: DocId,
        user: UserId,
        perm: Permission,
    ) -> Result<()> {
        let info = self.document_info_txn(txn, doc)?;
        let roles = self.roles_of_txn(txn, user)?;
        let rules = security::load_rules(txn, &self.t, doc)?;
        if security::decide(&rules, info.creator, user, &roles, perm) {
            Ok(())
        } else {
            Err(TextError::PermissionDenied { user, doc, perm })
        }
    }

    /// Grant or deny a document-level permission. Requires
    /// [`Permission::ManageSecurity`] from `by`.
    pub fn set_access(
        &self,
        doc: DocId,
        by: UserId,
        principal: Principal,
        perm: Permission,
        allow: bool,
    ) -> Result<()> {
        self.check_permission(doc, by, Permission::ManageSecurity)?;
        let mut txn = self.db.begin();
        txn.insert(
            self.t.acl,
            Row::new(vec![
                doc.value(),
                Value::Text(principal.kind_str().to_owned()),
                principal.id_value(),
                Value::Text(perm.as_str().to_owned()),
                Value::Bool(allow),
                Value::Null,
                Value::Null,
            ]),
        )?;
        // Setting access rights is itself an editing action the paper
        // logs (creation-process metadata), though not an undoable one.
        txn.insert(
            self.t.oplog,
            Row::new(vec![
                doc.value(),
                by.value(),
                Value::Timestamp(self.now()),
                Value::Text("acl".to_owned()),
                Value::Null,
                Value::Bool(false),
            ]),
        )?;
        txn.commit()?;
        Ok(())
    }

    /// Remove all document-level rules for `(principal, perm)`.
    pub fn clear_access(
        &self,
        doc: DocId,
        by: UserId,
        principal: Principal,
        perm: Permission,
    ) -> Result<()> {
        self.check_permission(doc, by, Permission::ManageSecurity)?;
        let mut txn = self.db.begin();
        let rows = txn.scan(self.t.acl, &Predicate::Eq("doc".into(), doc.value()))?;
        for (rid, row) in rows {
            let same_kind = row.get(1).and_then(|v| v.as_text()) == Some(principal.kind_str());
            let same_id = row.get(2) == Some(&principal.id_value());
            let same_perm = row.get(3).and_then(|v| v.as_text()) == Some(perm.as_str());
            let doc_level = row.get(5).map(|v| v.is_null()).unwrap_or(true);
            if same_kind && same_id && same_perm && doc_level {
                txn.delete(self.t.acl, rid)?;
            }
        }
        txn.commit()?;
        Ok(())
    }

    /// All access rules of a document (for rights-management UIs):
    /// document-level and range rules alike. Requires only Read.
    pub fn access_rules(&self, doc: DocId, by: UserId) -> Result<Vec<crate::security::AclRule>> {
        self.check_permission(doc, by, Permission::Read)?;
        let txn = self.db.begin();
        crate::security::load_rules(&txn, &self.t, doc)
    }

    // -------------------------------------------------------------- styles

    /// Define a named layout style (attribute string, e.g.
    /// `"bold;size=14"` — the attrs format is opaque to the engine).
    pub fn define_style(&self, name: &str, attrs: &str, author: UserId) -> Result<StyleId> {
        let mut txn = self.db.begin();
        self.require_user(&txn, author)?;
        let rid = txn.insert(
            self.t.styles,
            Row::new(vec![
                Value::Text(name.to_owned()),
                Value::Text(attrs.to_owned()),
                author.value(),
                Value::Timestamp(self.now()),
            ]),
        )?;
        txn.commit().map_err(|e| match e {
            tendax_storage::StorageError::UniqueViolation { .. } => {
                TextError::NameTaken(name.to_owned())
            }
            other => other.into(),
        })?;
        Ok(StyleId::from_row(rid))
    }

    pub fn style_by_name(&self, name: &str) -> Result<StyleId> {
        let txn = self.db.begin();
        let hits =
            txn.index_lookup(self.t.styles, "styles_by_name", &[Value::Text(name.into())])?;
        hits.first()
            .map(|(rid, _)| StyleId::from_row(*rid))
            .ok_or_else(|| TextError::UnknownStyle(name.to_owned()))
    }

    /// `(id, name, attrs)` of all styles.
    pub fn list_styles(&self) -> Result<Vec<(StyleId, String, String)>> {
        let txn = self.db.begin();
        Ok(txn
            .scan(self.t.styles, &Predicate::True)?
            .into_iter()
            .map(|(rid, row)| {
                (
                    StyleId::from_row(rid),
                    row.get(0)
                        .and_then(|v| v.as_text())
                        .unwrap_or_default()
                        .to_owned(),
                    row.get(1)
                        .and_then(|v| v.as_text())
                        .unwrap_or_default()
                        .to_owned(),
                )
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn user_lifecycle() {
        let tdb = TextDb::in_memory();
        let alice = tdb.create_user("alice").unwrap();
        assert_eq!(tdb.user_by_name("alice").unwrap(), alice);
        assert_eq!(tdb.user_name(alice).unwrap(), "alice");
        assert!(matches!(
            tdb.create_user("alice"),
            Err(TextError::NameTaken(_))
        ));
        assert!(matches!(
            tdb.user_by_name("nobody"),
            Err(TextError::UnknownUser(_))
        ));
        assert_eq!(tdb.list_users().unwrap().len(), 1);
    }

    #[test]
    fn role_membership() {
        let tdb = TextDb::in_memory();
        let alice = tdb.create_user("alice").unwrap();
        let editors = tdb.create_role("editors").unwrap();
        assert_eq!(tdb.role_by_name("editors").unwrap(), editors);
        tdb.assign_role(alice, editors).unwrap();
        tdb.assign_role(alice, editors).unwrap(); // idempotent
        assert_eq!(tdb.roles_of(alice).unwrap(), vec![editors]);
        tdb.unassign_role(alice, editors).unwrap();
        assert!(tdb.roles_of(alice).unwrap().is_empty());
    }

    #[test]
    fn document_lifecycle() {
        let tdb = TextDb::in_memory();
        let alice = tdb.create_user("alice").unwrap();
        let doc = tdb.create_document("report", alice).unwrap();
        assert_eq!(tdb.document_by_name("report").unwrap(), doc);
        let info = tdb.document_info(doc).unwrap();
        assert_eq!(info.name, "report");
        assert_eq!(info.creator, alice);
        assert_eq!(info.state, "draft");
        tdb.set_document_state(doc, "final", alice).unwrap();
        assert_eq!(tdb.document_info(doc).unwrap().state, "final");
        assert!(matches!(
            tdb.create_document("report", alice),
            Err(TextError::NameTaken(_))
        ));
        assert_eq!(tdb.list_documents().unwrap().len(), 1);
    }

    #[test]
    fn document_requires_existing_creator() {
        let tdb = TextDb::in_memory();
        assert!(matches!(
            tdb.create_document("x", UserId(99)),
            Err(TextError::UnknownUserId(_))
        ));
    }

    #[test]
    fn access_rules_enforced() {
        let tdb = TextDb::in_memory();
        let alice = tdb.create_user("alice").unwrap();
        let bob = tdb.create_user("bob").unwrap();
        let doc = tdb.create_document("secret", alice).unwrap();
        // Open by default.
        tdb.check_permission(doc, bob, Permission::Write).unwrap();
        // Alice (creator) closes writing to herself only.
        tdb.set_access(doc, alice, Principal::User(alice), Permission::Write, true)
            .unwrap();
        assert!(matches!(
            tdb.check_permission(doc, bob, Permission::Write),
            Err(TextError::PermissionDenied { .. })
        ));
        tdb.check_permission(doc, alice, Permission::Write).unwrap();
        // Bob may not manage security.
        assert!(tdb
            .set_access(doc, bob, Principal::User(bob), Permission::Write, true)
            .is_err());
        // Clearing the rule reopens the document.
        tdb.clear_access(doc, alice, Principal::User(alice), Permission::Write)
            .unwrap();
        tdb.check_permission(doc, bob, Permission::Write).unwrap();
    }

    #[test]
    fn role_based_access() {
        let tdb = TextDb::in_memory();
        let alice = tdb.create_user("alice").unwrap();
        let bob = tdb.create_user("bob").unwrap();
        let carol = tdb.create_user("carol").unwrap();
        let reviewers = tdb.create_role("reviewers").unwrap();
        tdb.assign_role(bob, reviewers).unwrap();
        let doc = tdb.create_document("paper", alice).unwrap();
        tdb.set_access(
            doc,
            alice,
            Principal::Role(reviewers),
            Permission::Layout,
            true,
        )
        .unwrap();
        tdb.check_permission(doc, bob, Permission::Layout).unwrap();
        assert!(tdb
            .check_permission(doc, carol, Permission::Layout)
            .is_err());
    }

    #[test]
    fn access_rules_are_listable() {
        let tdb = TextDb::in_memory();
        let alice = tdb.create_user("alice").unwrap();
        let bob = tdb.create_user("bob").unwrap();
        let doc = tdb.create_document("d", alice).unwrap();
        assert!(tdb.access_rules(doc, alice).unwrap().is_empty());
        tdb.set_access(doc, alice, Principal::User(bob), Permission::Write, false)
            .unwrap();
        let rules = tdb.access_rules(doc, bob).unwrap();
        assert_eq!(rules.len(), 1);
        assert_eq!(rules[0].perm, Permission::Write);
        assert!(!rules[0].allow);
        assert!(!rules[0].is_range_rule());
    }

    #[test]
    fn styles_registry() {
        let tdb = TextDb::in_memory();
        let alice = tdb.create_user("alice").unwrap();
        let h1 = tdb.define_style("heading1", "bold;size=20", alice).unwrap();
        assert_eq!(tdb.style_by_name("heading1").unwrap(), h1);
        assert!(matches!(
            tdb.define_style("heading1", "x", alice),
            Err(TextError::NameTaken(_))
        ));
        let styles = tdb.list_styles().unwrap();
        assert_eq!(styles.len(), 1);
        assert_eq!(styles[0].1, "heading1");
    }

    #[test]
    fn retrying_gives_up_on_permanent_errors() {
        let tdb = TextDb::in_memory();
        let mut calls = 0;
        let r: Result<()> = tdb.retrying(5, || {
            calls += 1;
            Err(TextError::NothingToUndo)
        });
        assert!(r.is_err());
        assert_eq!(calls, 1);
    }

    #[test]
    fn retrying_retries_conflicts() {
        let tdb = TextDb::in_memory();
        let mut calls = 0;
        let r: Result<i32> = tdb.retrying(5, || {
            calls += 1;
            if calls < 3 {
                Err(TextError::Storage(
                    tendax_storage::StorageError::WriteConflict {
                        table: "chars".into(),
                        txn: tendax_storage::TxnId(1),
                    },
                ))
            } else {
                Ok(7)
            }
        });
        assert_eq!(r.unwrap(), 7);
        assert_eq!(calls, 3);
    }
}
