//! # tendax-text
//!
//! The **Text Native Database eXtension** — the primary contribution of
//! "TeNDaX, a Collaborative Database-Based Real-Time Editor System"
//! (Leone et al., EDBT 2006), reproduced on top of [`tendax_storage`].
//!
//! Text is stored *natively* in the database: every character is a tuple
//! in a doubly-linked chain, and every editing action (typing, deleting,
//! copy–paste, layouting, annotating, embedding objects, undo/redo,
//! access-right changes) is one or more ACID transactions. Deleted
//! characters remain as tombstones carrying their full metadata, which is
//! what makes character-granular undo, versioning, lineage and mining
//! possible.
//!
//! ## Quick example
//!
//! ```
//! use tendax_text::TextDb;
//!
//! let tdb = TextDb::in_memory();
//! let alice = tdb.create_user("alice").unwrap();
//! let doc = tdb.create_document("report", alice).unwrap();
//!
//! let mut h = tdb.open(doc, alice).unwrap();
//! h.insert_text(0, "Hello, TeNDaX!").unwrap();
//! h.delete_range(0, 7).unwrap();
//! assert_eq!(h.text(), "TeNDaX!");
//! h.undo().unwrap();
//! assert_eq!(h.text(), "Hello, TeNDaX!");
//! ```

pub mod chain;
pub mod document;
pub mod error;
pub mod history;
pub mod ids;
pub mod layout;
pub mod meta;
pub mod notes;
pub mod objects;
pub mod ops;
pub mod render;
pub mod schema;
pub mod security;
pub mod template;
pub mod textdb;
pub mod undo;
pub mod vacuum;
pub mod version;

pub use chain::Chain;
pub use document::{CharInfo, DocHandle};
pub use error::{Result, TextError};
pub use history::HistoryEntry;
pub use ids::{
    CharId, DocId, NoteId, ObjectId, OpId, RoleId, StructId, StyleId, UserId, VersionId,
};
pub use layout::StructureInfo;
pub use meta::{CharMeta, DocStats, Provenance};
pub use notes::NoteInfo;
pub use objects::ObjectInfo;
pub use ops::{Clip, EditReceipt, Effect};
pub use schema::Tables;
pub use security::{AclRule, Permission, Principal};
pub use template::{TemplateId, TemplateInfo};
pub use textdb::{DocInfo, TextDb};
pub use vacuum::PurgeStats;
pub use version::VersionInfo;
