//! Fine-grained access control.
//!
//! TeNDaX enforces security *inside* the editing transactions: an
//! operation that touches protected characters fails before any row is
//! written. Rights are granted to users or roles, per document, optionally
//! restricted to a character range. Policy:
//!
//! * the document creator always holds every permission;
//! * an explicit document-level `deny` beats any `allow`;
//! * if any document-level rule mentions a permission, an `allow` matching
//!   the user (directly or via a role, or `all`) is required;
//! * with no rules for a permission the document is open — the demo's
//!   collaborative default;
//! * range rules (`from_char`/`to_char` set) only *protect*: a matching
//!   `deny` blocks edits that touch the range.

use tendax_storage::{Predicate, Transaction, Value};

use crate::error::Result;
use crate::ids::{CharId, DocId, RoleId, UserId};
use crate::schema::Tables;

/// The permission lattice of the editor system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Permission {
    /// Open and read the document.
    Read,
    /// Insert/delete characters, paste, embed objects.
    Write,
    /// Apply styles and structure.
    Layout,
    /// Attach notes.
    Annotate,
    /// Grant/revoke rights.
    ManageSecurity,
    /// Define and route workflow tasks in the document.
    DefineProcess,
}

impl Permission {
    pub fn as_str(self) -> &'static str {
        match self {
            Permission::Read => "read",
            Permission::Write => "write",
            Permission::Layout => "layout",
            Permission::Annotate => "annotate",
            Permission::ManageSecurity => "manage_security",
            Permission::DefineProcess => "define_process",
        }
    }

    #[allow(clippy::should_implement_trait)] // infallible-Option parse, not FromStr
    pub fn from_str(s: &str) -> Option<Permission> {
        Some(match s {
            "read" => Permission::Read,
            "write" => Permission::Write,
            "layout" => Permission::Layout,
            "annotate" => Permission::Annotate,
            "manage_security" => Permission::ManageSecurity,
            "define_process" => Permission::DefineProcess,
            _ => return None,
        })
    }
}

/// Who a rule applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Principal {
    User(UserId),
    Role(RoleId),
    /// Every user.
    All,
}

impl Principal {
    pub(crate) fn kind_str(self) -> &'static str {
        match self {
            Principal::User(_) => "user",
            Principal::Role(_) => "role",
            Principal::All => "all",
        }
    }

    pub(crate) fn id_value(self) -> Value {
        match self {
            Principal::User(u) => Value::Id(u.0),
            Principal::Role(r) => Value::Id(r.0),
            Principal::All => Value::Id(0),
        }
    }
}

/// One access rule as read back from the `acl` table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AclRule {
    pub principal: Principal,
    pub perm: Permission,
    pub allow: bool,
    /// Range-scoped protection, if set.
    pub from_char: CharId,
    pub to_char: CharId,
}

impl AclRule {
    pub fn is_range_rule(&self) -> bool {
        !self.from_char.is_none()
    }
}

/// Does `principal` match `user` given the user's `roles`?
fn matches(principal: Principal, user: UserId, roles: &[RoleId]) -> bool {
    match principal {
        Principal::All => true,
        Principal::User(u) => u == user,
        Principal::Role(r) => roles.contains(&r),
    }
}

/// Load all ACL rules of a document within `txn`'s snapshot.
pub(crate) fn load_rules(txn: &Transaction, t: &Tables, doc: DocId) -> Result<Vec<AclRule>> {
    let rows = txn.scan(t.acl, &Predicate::Eq("doc".into(), doc.value()))?;
    let mut rules = Vec::with_capacity(rows.len());
    for (_, row) in rows {
        let kind = row.get(1).and_then(|v| v.as_text()).unwrap_or("user");
        let pid = row.get(2).and_then(|v| v.as_id()).unwrap_or(0);
        let principal = match kind {
            "role" => Principal::Role(RoleId(pid)),
            "all" => Principal::All,
            _ => Principal::User(UserId(pid)),
        };
        let Some(perm) = row
            .get(3)
            .and_then(|v| v.as_text())
            .and_then(Permission::from_str)
        else {
            continue; // unknown permission string: ignore defensively
        };
        let allow = row.get(4).and_then(|v| v.as_bool()).unwrap_or(false);
        let from_char = row.get(5).map(CharId::from_value).unwrap_or(CharId::NONE);
        let to_char = row.get(6).map(CharId::from_value).unwrap_or(CharId::NONE);
        rules.push(AclRule {
            principal,
            perm,
            allow,
            from_char,
            to_char,
        });
    }
    Ok(rules)
}

/// Document-level permission decision.
pub(crate) fn decide(
    rules: &[AclRule],
    creator: UserId,
    user: UserId,
    roles: &[RoleId],
    perm: Permission,
) -> bool {
    if user == creator {
        return true;
    }
    let doc_rules: Vec<&AclRule> = rules
        .iter()
        .filter(|r| !r.is_range_rule() && r.perm == perm)
        .collect();
    if doc_rules
        .iter()
        .any(|r| !r.allow && matches(r.principal, user, roles))
    {
        return false; // explicit deny wins
    }
    if doc_rules.is_empty() {
        // Open by default — except security administration, which only
        // the creator (or explicitly allowed principals) may perform.
        return perm != Permission::ManageSecurity;
    }
    doc_rules
        .iter()
        .any(|r| r.allow && matches(r.principal, user, roles))
}

impl crate::document::DocHandle {
    /// Write-protect the visible range `[pos, pos + len)` against
    /// `principal` (use [`Principal::All`] to lock it for everyone but
    /// the creator). Requires [`Permission::ManageSecurity`].
    ///
    /// The protection is anchored at character ids, so it follows the
    /// text as the document changes around it.
    pub fn protect_range(
        &mut self,
        pos: usize,
        len: usize,
        principal: Principal,
        perm: Permission,
    ) -> Result<()> {
        if len == 0 {
            return Err(crate::error::TextError::InvalidPosition {
                pos,
                len,
                doc_len: self.len(),
            });
        }
        self.check_range(pos, len)?;
        let from = self.chain.id_at_visible(pos).expect("range checked");
        let to = self
            .chain
            .id_at_visible(pos + len - 1)
            .expect("range checked");
        let tdb = self.tdb.clone();
        tdb.check_permission(self.doc, self.user, Permission::ManageSecurity)?;
        let t = tdb.tables();
        let mut txn = tdb.database().begin();
        txn.insert(
            t.acl,
            tendax_storage::Row::new(vec![
                self.doc.value(),
                Value::Text(principal.kind_str().to_owned()),
                principal.id_value(),
                Value::Text(perm.as_str().to_owned()),
                Value::Bool(false), // range rules protect (deny)
                from.value(),
                to.value(),
            ]),
        )?;
        txn.commit()?;
        Ok(())
    }

    /// Remove every range protection covering exactly `[pos, pos+len)`
    /// for `principal`. Requires [`Permission::ManageSecurity`].
    pub fn unprotect_range(&mut self, pos: usize, len: usize, principal: Principal) -> Result<()> {
        self.check_range(pos, len)?;
        let from = self.chain.id_at_visible(pos);
        let to = self.chain.id_at_visible(pos + len.saturating_sub(1));
        let tdb = self.tdb.clone();
        tdb.check_permission(self.doc, self.user, Permission::ManageSecurity)?;
        let t = tdb.tables();
        let mut txn = tdb.database().begin();
        let rows = txn.scan(t.acl, &Predicate::Eq("doc".into(), self.doc.value()))?;
        for (rid, row) in rows {
            let same_kind = row.get(1).and_then(|v| v.as_text()) == Some(principal.kind_str());
            let same_id = row.get(2) == Some(&principal.id_value());
            let rule_from = row.get(5).map(CharId::from_value);
            let rule_to = row.get(6).map(CharId::from_value);
            if same_kind && same_id && rule_from == from && rule_to == to {
                txn.delete(t.acl, rid)?;
            }
        }
        txn.commit()?;
        Ok(())
    }

    /// The currently protected visible spans of this document, as seen
    /// through this handle's cache: `(from_pos, to_pos, perm)`.
    pub fn protected_spans(&self) -> Result<Vec<(usize, usize, Permission)>> {
        let txn = self.tdb.database().begin();
        let rules = load_rules(&txn, self.tdb.tables(), self.doc)?;
        let mut out = Vec::new();
        for r in rules {
            if !r.is_range_rule() || r.allow {
                continue;
            }
            if let (Some(a), Some(b)) = (
                self.chain.visible_rank(r.from_char),
                self.chain.visible_rank(r.to_char),
            ) {
                out.push((a, b, r.perm));
            }
        }
        out.sort_by_key(|(a, _, _)| *a);
        Ok(out)
    }
}

/// Range rules that deny `perm` to this user — edits overlapping the
/// protected spans must be rejected.
pub(crate) fn denied_ranges(
    rules: &[AclRule],
    creator: UserId,
    user: UserId,
    roles: &[RoleId],
    perm: Permission,
) -> Vec<(CharId, CharId)> {
    if user == creator {
        return Vec::new();
    }
    rules
        .iter()
        .filter(|r| {
            r.is_range_rule() && r.perm == perm && !r.allow && matches(r.principal, user, roles)
        })
        .map(|r| (r.from_char, r.to_char))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const CREATOR: UserId = UserId(1);
    const ALICE: UserId = UserId(2);
    const BOB: UserId = UserId(3);
    const EDITORS: RoleId = RoleId(10);

    fn rule(principal: Principal, perm: Permission, allow: bool) -> AclRule {
        AclRule {
            principal,
            perm,
            allow,
            from_char: CharId::NONE,
            to_char: CharId::NONE,
        }
    }

    #[test]
    fn creator_always_allowed() {
        let rules = vec![rule(Principal::All, Permission::Write, false)];
        assert!(decide(&rules, CREATOR, CREATOR, &[], Permission::Write));
    }

    #[test]
    fn open_by_default_except_security_admin() {
        assert!(decide(&[], CREATOR, ALICE, &[], Permission::Write));
        assert!(decide(&[], CREATOR, ALICE, &[], Permission::Read));
        assert!(!decide(
            &[],
            CREATOR,
            ALICE,
            &[],
            Permission::ManageSecurity
        ));
        assert!(decide(
            &[],
            CREATOR,
            CREATOR,
            &[],
            Permission::ManageSecurity
        ));
        // An explicit allow opens it up.
        let rules = vec![rule(
            Principal::User(ALICE),
            Permission::ManageSecurity,
            true,
        )];
        assert!(decide(
            &rules,
            CREATOR,
            ALICE,
            &[],
            Permission::ManageSecurity
        ));
    }

    #[test]
    fn allow_listing_closes_the_document() {
        let rules = vec![rule(Principal::User(ALICE), Permission::Write, true)];
        assert!(decide(&rules, CREATOR, ALICE, &[], Permission::Write));
        assert!(!decide(&rules, CREATOR, BOB, &[], Permission::Write));
        // Other permissions stay open.
        assert!(decide(&rules, CREATOR, BOB, &[], Permission::Read));
    }

    #[test]
    fn deny_beats_allow() {
        let rules = vec![
            rule(Principal::All, Permission::Write, true),
            rule(Principal::User(BOB), Permission::Write, false),
        ];
        assert!(decide(&rules, CREATOR, ALICE, &[], Permission::Write));
        assert!(!decide(&rules, CREATOR, BOB, &[], Permission::Write));
    }

    #[test]
    fn role_membership_grants() {
        let rules = vec![rule(Principal::Role(EDITORS), Permission::Layout, true)];
        assert!(decide(
            &rules,
            CREATOR,
            ALICE,
            &[EDITORS],
            Permission::Layout
        ));
        assert!(!decide(&rules, CREATOR, ALICE, &[], Permission::Layout));
    }

    #[test]
    fn range_rules_do_not_affect_document_decision() {
        let mut r = rule(Principal::All, Permission::Write, false);
        r.from_char = CharId(5);
        r.to_char = CharId(9);
        assert!(decide(&[r.clone()], CREATOR, ALICE, &[], Permission::Write));
        let denied = denied_ranges(&[r], CREATOR, ALICE, &[], Permission::Write);
        assert_eq!(denied, vec![(CharId(5), CharId(9))]);
    }

    #[test]
    fn denied_ranges_skip_creator_and_other_principals() {
        let mut r = rule(Principal::User(BOB), Permission::Write, false);
        r.from_char = CharId(1);
        r.to_char = CharId(2);
        assert!(denied_ranges(&[r.clone()], CREATOR, CREATOR, &[], Permission::Write).is_empty());
        assert!(denied_ranges(&[r.clone()], CREATOR, ALICE, &[], Permission::Write).is_empty());
        assert_eq!(
            denied_ranges(&[r], CREATOR, BOB, &[], Permission::Write).len(),
            1
        );
    }

    #[test]
    fn protect_range_blocks_other_users_edits() {
        use crate::textdb::TextDb;
        let tdb = TextDb::in_memory();
        let alice = tdb.create_user("alice").unwrap();
        let bob = tdb.create_user("bob").unwrap();
        let doc = tdb.create_document("d", alice).unwrap();
        let mut ha = tdb.open(doc, alice).unwrap();
        ha.insert_text(0, "locked open").unwrap();
        // Alice protects "locked" (positions 0..=5) against everyone.
        ha.protect_range(0, 6, Principal::All, Permission::Write)
            .unwrap();
        assert_eq!(
            ha.protected_spans().unwrap(),
            vec![(0, 5, Permission::Write)]
        );

        let mut hb = tdb.open(doc, bob).unwrap();
        // Deleting inside the protected span fails…
        assert!(matches!(
            hb.delete_range(2, 2),
            Err(crate::error::TextError::RangeProtected { .. })
        ));
        // …inserting strictly inside fails…
        assert!(matches!(
            hb.insert_text(3, "x"),
            Err(crate::error::TextError::RangeProtected { .. })
        ));
        // …but editing after the span works.
        hb.insert_text(11, "!").unwrap();
        // And the creator is never blocked.
        ha.refresh().unwrap();
        ha.delete_range(0, 1).unwrap();
    }

    #[test]
    fn protection_follows_text_and_can_be_lifted() {
        use crate::textdb::TextDb;
        let tdb = TextDb::in_memory();
        let alice = tdb.create_user("alice").unwrap();
        let bob = tdb.create_user("bob").unwrap();
        let doc = tdb.create_document("d", alice).unwrap();
        let mut ha = tdb.open(doc, alice).unwrap();
        ha.insert_text(0, "AAAA BBBB").unwrap();
        ha.protect_range(5, 4, Principal::User(bob), Permission::Write)
            .unwrap();
        // Insert before the span: the anchored span shifts.
        ha.insert_text(0, ">> ").unwrap();
        assert_eq!(
            ha.protected_spans().unwrap(),
            vec![(8, 11, Permission::Write)]
        );
        let mut hb = tdb.open(doc, bob).unwrap();
        assert!(hb.insert_text(9, "x").is_err());
        // Lift the protection (positions 8..=11 now).
        ha.unprotect_range(8, 4, Principal::User(bob)).unwrap();
        assert!(ha.protected_spans().unwrap().is_empty());
        hb.refresh().unwrap();
        hb.insert_text(9, "x").unwrap();
    }

    #[test]
    fn only_security_managers_can_protect() {
        use crate::textdb::TextDb;
        let tdb = TextDb::in_memory();
        let alice = tdb.create_user("alice").unwrap();
        let bob = tdb.create_user("bob").unwrap();
        let doc = tdb.create_document("d", alice).unwrap();
        let mut ha = tdb.open(doc, alice).unwrap();
        ha.insert_text(0, "text").unwrap();
        let mut hb = tdb.open(doc, bob).unwrap();
        assert!(matches!(
            hb.protect_range(0, 2, Principal::All, Permission::Write),
            Err(crate::error::TextError::PermissionDenied { .. })
        ));
    }

    #[test]
    fn permission_string_roundtrip() {
        for p in [
            Permission::Read,
            Permission::Write,
            Permission::Layout,
            Permission::Annotate,
            Permission::ManageSecurity,
            Permission::DefineProcess,
        ] {
            assert_eq!(Permission::from_str(p.as_str()), Some(p));
        }
        assert_eq!(Permission::from_str("bogus"), None);
    }
}
