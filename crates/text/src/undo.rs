//! Local and global undo/redo.
//!
//! Because deletion tombstones keep every character in the chain, undo
//! never has to re-link anything: undoing an insertion tombstones the
//! inserted characters, undoing a deletion revives them, undoing a style
//! change restores the previous style. The inverse of an operation is read
//! from its relational `op_effects` rows and applied as a *new*
//! transaction (which is itself logged — the history is append-only).
//!
//! *Local* undo targets the calling user's most recent not-undone edit,
//! skipping other users' operations — the multi-user semantics of the
//! TeNDaX demo. *Global* undo targets the most recent edit regardless of
//! author.

use tendax_storage::{Transaction, Value};

use crate::document::DocHandle;
use crate::error::{Result, TextError};
use crate::ids::{CharId, OpId, StyleId, UserId};
use crate::ops::{EditReceipt, Effect, EDIT_KINDS};
use crate::security::Permission;

/// One effect row, decoded.
#[derive(Debug, Clone)]
struct EffectRow {
    seq: i64,
    kind: String,
    char: CharId,
    old_val: Option<String>,
    new_val: Option<String>,
}

impl DocHandle {
    /// Undo this user's most recent not-yet-undone edit.
    pub fn undo(&mut self) -> Result<EditReceipt> {
        self.undo_impl(Some(self.user))
    }

    /// Undo the most recent edit by *any* user (the demo's global undo).
    pub fn global_undo(&mut self) -> Result<EditReceipt> {
        self.undo_impl(None)
    }

    /// Re-apply this user's most recently undone edit.
    pub fn redo(&mut self) -> Result<EditReceipt> {
        self.redo_impl(Some(self.user))
    }

    /// Re-apply the most recently undone edit by any user.
    pub fn global_redo(&mut self) -> Result<EditReceipt> {
        self.redo_impl(None)
    }

    fn undo_impl(&mut self, scope: Option<UserId>) -> Result<EditReceipt> {
        let mut txn = self.begin();
        self.tdb
            .check_permission_txn(&txn, self.doc, self.user, Permission::Write)?;
        let (target, _) = self
            .newest_op(&txn, scope, |kind, undone| {
                EDIT_KINDS.contains(&kind) && !undone
            })?
            .ok_or(TextError::NothingToUndo)?;
        let rows = self.effect_rows(&txn, target)?;
        let ts = self.tdb.now();
        let effects = self.apply_effect_rows(&mut txn, &rows, false, ts)?;
        txn.set(
            self.tdb.tables().oplog,
            target.row(),
            &[("undone", Value::Bool(true))],
        )?;
        let op = self.log_op(&mut txn, "undo", target, ts)?;
        let commit_ts = txn.commit()?;
        self.note_commit(commit_ts);
        // Post-commit: the undo is durable. If the cache rejects its own
        // effects, rebuild instead of surfacing a retryable error (a
        // retry would undo twice).
        if self.apply_remote(&effects).is_err() {
            self.rebuild()?;
        }
        Ok(EditReceipt {
            op,
            commit_ts,
            effects,
        })
    }

    fn redo_impl(&mut self, scope: Option<UserId>) -> Result<EditReceipt> {
        let mut txn = self.begin();
        self.tdb
            .check_permission_txn(&txn, self.doc, self.user, Permission::Write)?;
        let (undo_op, undo_target) = self
            .newest_op(&txn, scope, |kind, undone| kind == "undo" && !undone)?
            .ok_or(TextError::NothingToRedo)?;
        let target = undo_target
            .ok_or_else(|| TextError::ChainCorrupt(format!("undo op {undo_op} has no target")))?;
        let rows = self.effect_rows(&txn, target)?;
        let ts = self.tdb.now();
        let effects = self.apply_effect_rows(&mut txn, &rows, true, ts)?;
        let t = self.tdb.tables();
        txn.set(t.oplog, target.row(), &[("undone", Value::Bool(false))])?;
        txn.set(t.oplog, undo_op.row(), &[("undone", Value::Bool(true))])?;
        let op = self.log_op(&mut txn, "redo", undo_op, ts)?;
        let commit_ts = txn.commit()?;
        self.note_commit(commit_ts);
        if self.apply_remote(&effects).is_err() {
            self.rebuild()?;
        }
        Ok(EditReceipt {
            op,
            commit_ts,
            effects,
        })
    }

    /// Newest oplog entry of this document matching `pred`, optionally
    /// restricted to one user. Returns `(op, target)`.
    ///
    /// Walks the `(doc[, user], ts)` index newest-first with a descending
    /// cursor, so the cost is proportional to the number of entries
    /// *skipped* (typically zero or a few undone ops), not to the size of
    /// the document's whole operation log.
    fn newest_op(
        &self,
        txn: &Transaction,
        scope: Option<UserId>,
        pred: impl Fn(&str, bool) -> bool,
    ) -> Result<Option<(OpId, Option<OpId>)>> {
        let t = self.tdb.tables();
        let (index, prefix) = match scope {
            Some(user) => ("oplog_by_doc_user_ts", vec![self.doc.value(), user.value()]),
            None => ("oplog_by_doc_ts", vec![self.doc.value()]),
        };
        let mut cursor: Option<tendax_storage::index::IndexKey> = None;
        loop {
            let Some((key, rid, row)) = txn.index_prev(t.oplog, index, &prefix, cursor.as_ref())?
            else {
                return Ok(None);
            };
            let kind = row.get(3).and_then(|v| v.as_text()).unwrap_or("");
            let undone = row.get(5).and_then(|v| v.as_bool()).unwrap_or(false);
            if pred(kind, undone) {
                let target = row.get(4).map(OpId::from_value).filter(|t| !t.is_none());
                return Ok(Some((OpId::from_row(rid), target)));
            }
            cursor = Some(key);
        }
    }

    fn effect_rows(&self, txn: &Transaction, op: OpId) -> Result<Vec<EffectRow>> {
        let t = self.tdb.tables();
        let mut rows: Vec<EffectRow> = txn
            .index_lookup(t.op_effects, "op_effects_by_op", &[op.value()])?
            .into_iter()
            .map(|(_, row)| EffectRow {
                seq: row.get(1).and_then(|v| v.as_int()).unwrap_or(0),
                kind: row
                    .get(2)
                    .and_then(|v| v.as_text())
                    .unwrap_or_default()
                    .to_owned(),
                char: row.get(3).map(CharId::from_value).unwrap_or(CharId::NONE),
                old_val: row.get(4).and_then(|v| v.as_text()).map(str::to_owned),
                new_val: row.get(5).and_then(|v| v.as_text()).map(str::to_owned),
            })
            .collect();
        rows.sort_by_key(|r| r.seq);
        Ok(rows)
    }

    /// Apply effect rows in `forward` (redo) or inverse (undo) direction,
    /// writing char/structure/note rows inside `txn` and returning the
    /// cache-level effects for broadcast.
    fn apply_effect_rows(
        &self,
        txn: &mut Transaction,
        rows: &[EffectRow],
        forward: bool,
        ts: i64,
    ) -> Result<Vec<Effect>> {
        let t = *self.tdb.tables();
        let mut out = Vec::with_capacity(rows.len());
        for r in rows {
            match (r.kind.as_str(), forward) {
                // Undo an insertion / redo a deletion: tombstone.
                ("ins", false) | ("del", true) => {
                    txn.set(
                        t.chars,
                        r.char.row(),
                        &[
                            ("deleted", Value::Bool(true)),
                            ("deleted_by", self.user.value()),
                            ("deleted_at", Value::Timestamp(ts)),
                        ],
                    )?;
                    out.push(Effect::Delete {
                        char: r.char,
                        by: self.user,
                        ts,
                    });
                }
                // Undo a deletion / redo an insertion: revive.
                ("ins", true) | ("del", false) => {
                    txn.set(
                        t.chars,
                        r.char.row(),
                        &[
                            ("deleted", Value::Bool(false)),
                            ("deleted_by", Value::Null),
                            ("deleted_at", Value::Null),
                        ],
                    )?;
                    out.push(Effect::Undelete { char: r.char });
                }
                ("sty", fwd) => {
                    let old = parse_style(r.old_val.as_deref());
                    let new = parse_style(r.new_val.as_deref());
                    let (set_to, from) = if fwd { (new, old) } else { (old, new) };
                    txn.set(t.chars, r.char.row(), &[("style", set_to.opt_value())])?;
                    out.push(Effect::SetStyle {
                        char: r.char,
                        old: from,
                        new: set_to,
                    });
                }
                // Structure / note rows: `char` holds the element row id.
                ("struct", fwd) => {
                    txn.set(t.structure, r.char.row(), &[("deleted", Value::Bool(!fwd))])?;
                }
                ("note", fwd) => {
                    txn.set(t.notes, r.char.row(), &[("deleted", Value::Bool(!fwd))])?;
                }
                (other, _) => {
                    return Err(TextError::ChainCorrupt(format!(
                        "unknown effect kind `{other}`"
                    )));
                }
            }
        }
        Ok(out)
    }
}

fn parse_style(s: Option<&str>) -> StyleId {
    s.and_then(|x| x.parse::<u64>().ok())
        .map(StyleId)
        .unwrap_or(StyleId::NONE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::textdb::TextDb;

    fn setup() -> (TextDb, UserId, DocHandle) {
        let tdb = TextDb::in_memory();
        let user = tdb.create_user("alice").unwrap();
        let doc = tdb.create_document("d", user).unwrap();
        let h = tdb.open(doc, user).unwrap();
        (tdb, user, h)
    }

    #[test]
    fn undo_insert_then_redo() {
        let (_tdb, _u, mut h) = setup();
        h.insert_text(0, "hello").unwrap();
        h.insert_text(5, " world").unwrap();
        h.undo().unwrap();
        assert_eq!(h.text(), "hello");
        h.undo().unwrap();
        assert_eq!(h.text(), "");
        h.redo().unwrap();
        assert_eq!(h.text(), "hello");
        h.redo().unwrap();
        assert_eq!(h.text(), "hello world");
        assert!(matches!(h.redo(), Err(TextError::NothingToRedo)));
    }

    #[test]
    fn undo_delete_revives_tombstones() {
        let (_tdb, _u, mut h) = setup();
        h.insert_text(0, "hello world").unwrap();
        h.delete_range(0, 6).unwrap();
        assert_eq!(h.text(), "world");
        h.undo().unwrap();
        assert_eq!(h.text(), "hello world");
        // The revived characters keep their original authorship.
        let id = h.char_at(0).unwrap();
        assert!(!h.char_info(id).unwrap().deleted);
    }

    #[test]
    fn nothing_to_undo() {
        let (_tdb, _u, mut h) = setup();
        assert!(matches!(h.undo(), Err(TextError::NothingToUndo)));
        h.insert_text(0, "x").unwrap();
        h.undo().unwrap();
        assert!(matches!(h.undo(), Err(TextError::NothingToUndo)));
    }

    #[test]
    fn local_undo_skips_other_users() {
        let tdb = TextDb::in_memory();
        let alice = tdb.create_user("alice").unwrap();
        let bob = tdb.create_user("bob").unwrap();
        let doc = tdb.create_document("d", alice).unwrap();
        let mut ha = tdb.open(doc, alice).unwrap();
        ha.insert_text(0, "alice ").unwrap();
        let mut hb = tdb.open(doc, bob).unwrap();
        hb.insert_text(6, "bob").unwrap();
        ha.apply_remote(&[]).unwrap(); // no-op; alice's view is stale but undo is id-based
                                       // Alice's local undo must remove HER text, not Bob's.
        let receipt = ha.undo().unwrap();
        assert_eq!(receipt.effects.len(), 6);
        let fresh = tdb.open(doc, alice).unwrap();
        assert_eq!(fresh.text(), "bob");
    }

    #[test]
    fn global_undo_takes_newest_regardless_of_author() {
        let tdb = TextDb::in_memory();
        let alice = tdb.create_user("alice").unwrap();
        let bob = tdb.create_user("bob").unwrap();
        let doc = tdb.create_document("d", alice).unwrap();
        let mut ha = tdb.open(doc, alice).unwrap();
        ha.insert_text(0, "alice ").unwrap();
        let mut hb = tdb.open(doc, bob).unwrap();
        hb.insert_text(6, "bob").unwrap();
        // Alice global-undoes Bob's newest edit.
        ha.refresh().unwrap();
        ha.global_undo().unwrap();
        let fresh = tdb.open(doc, alice).unwrap();
        assert_eq!(fresh.text(), "alice ");
        // And global redo brings it back.
        ha.global_redo().unwrap();
        let fresh = tdb.open(doc, alice).unwrap();
        assert_eq!(fresh.text(), "alice bob");
    }

    #[test]
    fn undo_is_itself_logged() {
        let (tdb, _u, mut h) = setup();
        h.insert_text(0, "x").unwrap();
        h.undo().unwrap();
        let txn = tdb.database().begin();
        let ops = txn
            .scan(tdb.tables().oplog, &tendax_storage::Predicate::True)
            .unwrap();
        let kinds: Vec<&str> = ops
            .iter()
            .filter_map(|(_, r)| r.get(3).and_then(|v| v.as_text()))
            .collect();
        assert!(kinds.contains(&"undo"));
    }

    #[test]
    fn interleaved_undo_redo_cycles() {
        let (_tdb, _u, mut h) = setup();
        h.insert_text(0, "a").unwrap();
        h.insert_text(1, "b").unwrap();
        h.insert_text(2, "c").unwrap();
        h.undo().unwrap(); // -c
        h.undo().unwrap(); // -b
        h.redo().unwrap(); // +b
        assert_eq!(h.text(), "ab");
        h.insert_text(2, "d").unwrap();
        assert_eq!(h.text(), "abd");
        h.undo().unwrap();
        assert_eq!(h.text(), "ab");
        h.undo().unwrap();
        assert_eq!(h.text(), "a");
    }

    #[test]
    fn paste_is_undoable() {
        let (_tdb, _u, mut h) = setup();
        h.insert_text(0, "source").unwrap();
        let clip = h.copy(0, 3).unwrap();
        h.paste(6, &clip).unwrap();
        assert_eq!(h.text(), "sourcesou");
        h.undo().unwrap();
        assert_eq!(h.text(), "source");
    }
}
