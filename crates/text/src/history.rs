//! Document history: the audit view over the operation log.
//!
//! Every editing action is a logged transaction, so "who did what, when"
//! is a query. This is the data behind the demo's awareness and
//! versioning stories, and the per-document activity feed an editor
//! sidebar would show.

use tendax_storage::index::IndexKey;

use crate::document::DocHandle;
use crate::error::Result;
use crate::ids::{OpId, UserId};

/// One history entry (an `oplog` row, decoded).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoryEntry {
    pub op: OpId,
    pub user: UserId,
    pub user_name: String,
    pub ts: i64,
    pub kind: String,
    /// For undo/redo entries: the operation they acted on.
    pub target: Option<OpId>,
    /// Whether the operation is currently undone.
    pub undone: bool,
    /// Number of characters the operation touched.
    pub touched: usize,
}

impl DocHandle {
    /// The newest `limit` operations on this document, newest first.
    ///
    /// Walks the `(doc, ts)` index with a descending cursor, so the cost
    /// is proportional to `limit`, not to the document's full history.
    pub fn history(&self, limit: usize) -> Result<Vec<HistoryEntry>> {
        let t = self.tdb.tables();
        let txn = self.begin();
        let prefix = [self.doc.value()];
        let mut cursor: Option<IndexKey> = None;
        let mut out = Vec::with_capacity(limit.min(64));
        while out.len() < limit {
            let Some((key, rid, row)) =
                txn.index_prev(t.oplog, "oplog_by_doc_ts", &prefix, cursor.as_ref())?
            else {
                break;
            };
            let op = OpId::from_row(rid);
            let user = row.get(1).map(UserId::from_value).unwrap_or(UserId::NONE);
            let touched = txn
                .index_lookup(t.op_effects, "op_effects_by_op", &[op.value()])?
                .len();
            out.push(HistoryEntry {
                op,
                user,
                user_name: self
                    .tdb
                    .user_name(user)
                    .unwrap_or_else(|_| format!("user#{}", user.0)),
                ts: row.get(2).and_then(|v| v.as_timestamp()).unwrap_or(0),
                kind: row
                    .get(3)
                    .and_then(|v| v.as_text())
                    .unwrap_or_default()
                    .to_owned(),
                target: row.get(4).map(OpId::from_value).filter(|t| !t.is_none()),
                undone: row.get(5).and_then(|v| v.as_bool()).unwrap_or(false),
                touched,
            });
            cursor = Some(key);
        }
        Ok(out)
    }

    /// Render the recent history as a human-readable activity feed.
    pub fn history_feed(&self, limit: usize) -> Result<String> {
        let mut out = String::new();
        for e in self.history(limit)? {
            out.push_str(&format!(
                "t={:<6} {:<10} {:<9} {} char(s){}{}\n",
                e.ts,
                e.user_name,
                e.kind,
                e.touched,
                if e.undone { " [undone]" } else { "" },
                e.target
                    .map(|t| format!(" (target op#{})", t.0))
                    .unwrap_or_default(),
            ));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use crate::textdb::TextDb;

    #[test]
    fn history_lists_newest_first() {
        let tdb = TextDb::in_memory();
        let alice = tdb.create_user("alice").unwrap();
        let bob = tdb.create_user("bob").unwrap();
        let doc = tdb.create_document("d", alice).unwrap();
        let mut ha = tdb.open(doc, alice).unwrap();
        ha.insert_text(0, "hello").unwrap();
        let mut hb = tdb.open(doc, bob).unwrap();
        hb.insert_text(5, " world").unwrap();
        ha.refresh().unwrap();
        ha.delete_range(0, 2).unwrap();

        let history = ha.history(10).unwrap();
        assert_eq!(history.len(), 3);
        assert_eq!(history[0].kind, "delete");
        assert_eq!(history[0].user_name, "alice");
        assert_eq!(history[0].touched, 2);
        assert_eq!(history[1].kind, "insert");
        assert_eq!(history[1].user_name, "bob");
        assert_eq!(history[1].touched, 6);
        assert_eq!(history[2].user_name, "alice");
        assert!(history[0].ts > history[1].ts);
    }

    #[test]
    fn history_limit_and_undo_markers() {
        let tdb = TextDb::in_memory();
        let u = tdb.create_user("u").unwrap();
        let doc = tdb.create_document("d", u).unwrap();
        let mut h = tdb.open(doc, u).unwrap();
        for i in 0..5 {
            h.insert_text(i, "x").unwrap();
        }
        h.undo().unwrap();
        // limit respected
        assert_eq!(h.history(2).unwrap().len(), 2);
        let all = h.history(100).unwrap();
        assert_eq!(all.len(), 6); // 5 inserts + the undo op
        assert_eq!(all[0].kind, "undo");
        assert!(all[0].target.is_some());
        // The undone insert carries the marker.
        let undone: Vec<_> = all.iter().filter(|e| e.undone).collect();
        assert_eq!(undone.len(), 1);
        assert_eq!(undone[0].kind, "insert");

        let feed = h.history_feed(3).unwrap();
        assert!(feed.contains("undo"));
        assert!(feed.lines().count() == 3);
    }

    #[test]
    fn empty_document_has_empty_history() {
        let tdb = TextDb::in_memory();
        let u = tdb.create_user("u").unwrap();
        let doc = tdb.create_document("d", u).unwrap();
        let h = tdb.open(doc, u).unwrap();
        assert!(h.history(10).unwrap().is_empty());
        assert_eq!(h.history_feed(10).unwrap(), "");
    }
}
