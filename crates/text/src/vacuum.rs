//! Tombstone purging: text-level space reclamation.
//!
//! Deleted characters stay in the chain as tombstones so that undo,
//! lineage and mining keep working — but a long-lived document
//! accumulates them without bound. `purge_tombstones` physically removes
//! tombstones older than a horizon in one transaction: surviving
//! neighbours are re-linked, the purged characters' effect rows are
//! dropped, and the operations that reference them are sealed (marked
//! undone) so undo/redo never tries to revive a purged character.
//!
//! Trade-off, stated plainly: purging truncates undo history and
//! character-level provenance chains at the horizon — exactly like a
//! database `VACUUM` truncates time travel. Open handles become stale
//! and recover via their normal refresh path.

use std::collections::{BTreeSet, HashMap};

use tendax_storage::Value;

use crate::error::{Result, TextError};
use crate::ids::{CharId, DocId, OpId};
use crate::textdb::TextDb;

/// What a purge did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PurgeStats {
    /// Tombstoned characters physically removed.
    pub purged_chars: usize,
    /// Surviving characters whose `prev`/`next` links were rewritten.
    pub relinked: usize,
    /// Operations sealed (their effects referenced purged characters).
    pub sealed_ops: usize,
}

impl TextDb {
    /// Physically remove tombstones of `doc` whose deletion happened
    /// strictly before `before` (engine-clock timestamp). Returns what
    /// was reclaimed.
    pub fn purge_tombstones(&self, doc: DocId, before: i64) -> Result<PurgeStats> {
        let t = *self.tables();
        let mut txn = self.database().begin();
        let rows = txn.index_lookup(t.chars, "chars_by_doc", &[doc.value()])?;
        if rows.is_empty() {
            txn.abort();
            return Ok(PurgeStats::default());
        }

        // Decode linkage and find the head.
        struct Node {
            prev: CharId,
            next: CharId,
            purge: bool,
        }
        let mut nodes: HashMap<CharId, Node> = HashMap::with_capacity(rows.len());
        let mut head = CharId::NONE;
        for (rid, row) in &rows {
            let id = CharId::from_row(*rid);
            let prev = row.get(1).map(CharId::from_value).unwrap_or(CharId::NONE);
            let next = row.get(2).map(CharId::from_value).unwrap_or(CharId::NONE);
            let deleted = row.get(7).and_then(|v| v.as_bool()).unwrap_or(false);
            let deleted_at = row.get(9).and_then(|v| v.as_timestamp());
            let purge = deleted && deleted_at.is_some_and(|ts| ts < before);
            if prev.is_none() {
                head = id;
            }
            nodes.insert(id, Node { prev, next, purge });
        }
        if head.is_none() {
            txn.abort();
            return Err(TextError::ChainCorrupt(format!("no chain head in {doc}")));
        }

        // Walk the chain; compute the surviving sequence.
        let mut order = Vec::with_capacity(nodes.len());
        let mut cur = head;
        while !cur.is_none() {
            let node = nodes
                .get(&cur)
                .ok_or_else(|| TextError::ChainCorrupt(format!("dangling pointer to {cur}")))?;
            order.push(cur);
            cur = node.next;
            if order.len() > nodes.len() {
                return Err(TextError::ChainCorrupt(format!("cycle in {doc}")));
            }
        }
        let survivors: Vec<CharId> = order
            .iter()
            .copied()
            .filter(|id| !nodes[id].purge)
            .collect();
        let purged: Vec<CharId> = order.iter().copied().filter(|id| nodes[id].purge).collect();
        if purged.is_empty() {
            txn.abort();
            return Ok(PurgeStats::default());
        }

        // Re-link survivors whose neighbours changed.
        let mut relinked = 0;
        for (i, id) in survivors.iter().enumerate() {
            let new_prev = if i == 0 {
                CharId::NONE
            } else {
                survivors[i - 1]
            };
            let new_next = survivors.get(i + 1).copied().unwrap_or(CharId::NONE);
            let node = &nodes[id];
            if node.prev != new_prev || node.next != new_next {
                txn.set(
                    t.chars,
                    id.row(),
                    &[
                        ("prev", new_prev.opt_value()),
                        ("next", new_next.opt_value()),
                    ],
                )?;
                relinked += 1;
            }
        }

        // Seal operations that reference purged characters and drop the
        // effect rows; then drop the characters themselves. Reads happen
        // before the bulk deletes: index lookups are overlay-aware and
        // would otherwise rescan an ever-growing write set (quadratic).
        let mut sealed: BTreeSet<OpId> = BTreeSet::new();
        let mut effect_rows = Vec::new();
        for id in &purged {
            for (erid, erow) in
                txn.index_lookup(t.op_effects, "op_effects_by_char", &[id.value()])?
            {
                if let Some(op) = erow.get(0).map(OpId::from_value) {
                    sealed.insert(op);
                }
                effect_rows.push(erid);
            }
        }
        for erid in effect_rows {
            txn.delete(t.op_effects, erid)?;
        }
        for id in &purged {
            txn.delete(t.chars, id.row())?;
        }
        for op in &sealed {
            // The op row may itself be gone in pathological cases; ignore
            // individual misses rather than failing the purge.
            let _ = txn.set(t.oplog, op.row(), &[("undone", Value::Bool(true))]);
        }
        txn.commit()?;
        Ok(PurgeStats {
            purged_chars: purged.len(),
            relinked,
            sealed_ops: sealed.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (TextDb, crate::ids::UserId, DocId) {
        let tdb = TextDb::in_memory();
        let u = tdb.create_user("alice").unwrap();
        let d = tdb.create_document("doc", u).unwrap();
        (tdb, u, d)
    }

    #[test]
    fn purge_removes_old_tombstones_and_relinks() {
        let (tdb, u, d) = setup();
        let mut h = tdb.open(d, u).unwrap();
        h.insert_text(0, "hello cruel world").unwrap();
        h.delete_range(5, 6).unwrap(); // " cruel"
        assert_eq!(h.text(), "hello world");
        assert_eq!(h.chain_len(), 17);

        let horizon = tdb.now();
        let stats = tdb.purge_tombstones(d, horizon).unwrap();
        assert_eq!(stats.purged_chars, 6);
        assert!(stats.relinked >= 1);
        assert_eq!(stats.sealed_ops, 2); // the insert op and the delete op

        // A fresh handle sees the same text over a compact chain.
        let h2 = tdb.open(d, u).unwrap();
        assert_eq!(h2.text(), "hello world");
        assert_eq!(h2.chain_len(), 11);
    }

    #[test]
    fn purge_respects_the_horizon() {
        let (tdb, u, d) = setup();
        let mut h = tdb.open(d, u).unwrap();
        h.insert_text(0, "abcdef").unwrap();
        h.delete_range(0, 2).unwrap();
        let mid = tdb.now();
        h.delete_range(0, 2).unwrap(); // deletes "cd" after `mid`
                                       // Only the first deletion is older than `mid`.
        let stats = tdb.purge_tombstones(d, mid).unwrap();
        assert_eq!(stats.purged_chars, 2);
        let h2 = tdb.open(d, u).unwrap();
        assert_eq!(h2.text(), "ef");
        assert_eq!(h2.chain_len(), 4); // "cd" tombstones remain
    }

    #[test]
    fn purge_seals_undo_past_the_horizon() {
        let (tdb, u, d) = setup();
        let mut h = tdb.open(d, u).unwrap();
        h.insert_text(0, "keep ").unwrap();
        h.insert_text(5, "gone").unwrap();
        h.delete_range(5, 4).unwrap();
        tdb.purge_tombstones(d, tdb.now()).unwrap();

        let mut h2 = tdb.open(d, u).unwrap();
        assert_eq!(h2.text(), "keep ");
        // The delete and the purged insert are sealed; undo reaches the
        // surviving first insert instead of failing on missing rows.
        h2.undo().unwrap();
        assert_eq!(h2.text(), "");
        assert!(h2.undo().is_err());
    }

    #[test]
    fn purge_noops_when_nothing_qualifies() {
        let (tdb, u, d) = setup();
        let mut h = tdb.open(d, u).unwrap();
        h.insert_text(0, "live text").unwrap();
        let stats = tdb.purge_tombstones(d, tdb.now()).unwrap();
        assert_eq!(stats, PurgeStats::default());
        // Empty document too.
        let d2 = tdb.create_document("empty", u).unwrap();
        assert_eq!(
            tdb.purge_tombstones(d2, tdb.now()).unwrap(),
            PurgeStats::default()
        );
    }

    #[test]
    fn stale_handle_recovers_after_purge() {
        let (tdb, u, d) = setup();
        let mut h = tdb.open(d, u).unwrap();
        h.insert_text(0, "abcdef").unwrap();
        h.delete_range(2, 2).unwrap();
        let mut stale = tdb.open(d, u).unwrap();
        tdb.purge_tombstones(d, tdb.now()).unwrap();
        // The stale handle's next edit detects the changed linkage,
        // refreshes, and succeeds on retry.
        let err = stale.insert_text(2, "X");
        if let Err(e) = err {
            assert!(e.is_retryable());
            stale.refresh().unwrap();
            stale.insert_text(2, "X").unwrap();
        }
        let fresh = tdb.open(d, u).unwrap();
        assert_eq!(fresh.text(), "abXef");
    }
}
