//! Rendering: the editor's display path, console edition.
//!
//! The GUI editors of the demo render styled, structured text; this
//! module is the headless equivalent. [`DocHandle::render_markup`]
//! produces a deterministic inline-markup rendering of the visible text
//! with style runs, structure elements, notes and embedded objects —
//! enough to verify the full layout pipeline end to end without a
//! toolkit.

use std::collections::HashMap;

use crate::document::DocHandle;
use crate::error::Result;
use crate::ids::StyleId;

impl DocHandle {
    /// Render the document as inline markup:
    ///
    /// * style runs: `[s:NAME]…[/s]`
    /// * structure elements: `«KIND»…«/KIND»`
    /// * notes: `⟦…⟧{author#N: TEXT}`
    /// * objects: the anchor renders as `[obj:NAME]`
    pub fn render_markup(&self) -> Result<String> {
        let styles: HashMap<StyleId, String> = self
            .textdb()
            .list_styles()?
            .into_iter()
            .map(|(id, name, _)| (id, name))
            .collect();
        let structures = self.structures()?;
        let notes = self.notes()?;
        let objects = self.objects()?;
        let object_at: HashMap<usize, String> = objects
            .iter()
            .filter_map(|o| o.position.map(|p| (p, o.name.clone())))
            .collect();

        // Per-position annotation points.
        let mut open_struct: HashMap<usize, Vec<String>> = HashMap::new();
        let mut close_struct: HashMap<usize, Vec<String>> = HashMap::new();
        for s in &structures {
            if let Some((a, b)) = s.span {
                open_struct.entry(a).or_default().push(s.kind.clone());
                close_struct.entry(b).or_default().push(s.kind.clone());
            }
        }
        let mut open_note: HashMap<usize, usize> = HashMap::new();
        let mut close_note: HashMap<usize, Vec<String>> = HashMap::new();
        for n in &notes {
            if let Some((a, b)) = n.span {
                *open_note.entry(a).or_default() += 1;
                close_note
                    .entry(b)
                    .or_default()
                    .push(format!("{{author#{}: {}}}", n.author.0, n.text));
            }
        }

        let mut out = String::with_capacity(self.len() * 2);
        let mut current_style = StyleId::NONE;
        let ids = self.chain.iter_visible();
        for (pos, id) in ids.iter().enumerate() {
            let info = &self.cache[id];
            // Structure openings before the character.
            if let Some(kinds) = open_struct.get(&pos) {
                for k in kinds {
                    out.push_str(&format!("«{k}»"));
                }
            }
            // Note openings.
            if let Some(&n) = open_note.get(&pos) {
                for _ in 0..n {
                    out.push('⟦');
                }
            }
            // Style transitions.
            if info.style != current_style {
                if !current_style.is_none() {
                    out.push_str("[/s]");
                }
                if !info.style.is_none() {
                    let name = styles
                        .get(&info.style)
                        .cloned()
                        .unwrap_or_else(|| format!("style#{}", info.style.0));
                    out.push_str(&format!("[s:{name}]"));
                }
                current_style = info.style;
            }
            // The character (object anchors render as their object).
            if info.ch == '\u{FFFC}' {
                let name = object_at
                    .get(&pos)
                    .cloned()
                    .unwrap_or_else(|| "?".to_owned());
                out.push_str(&format!("[obj:{name}]"));
            } else {
                out.push(info.ch);
            }
            // Note closings after the character.
            if let Some(tags) = close_note.get(&pos) {
                for tag in tags {
                    out.push('⟧');
                    out.push_str(tag);
                }
            }
            // Structure closings.
            if let Some(kinds) = close_struct.get(&pos) {
                for k in kinds.iter().rev() {
                    out.push_str(&format!("«/{k}»"));
                }
            }
        }
        if !current_style.is_none() {
            out.push_str("[/s]");
        }
        Ok(out)
    }

    /// Plain-text export with structure elements as line prefixes
    /// (`# heading1`, `- list_item`, …) — a minimal document exporter.
    pub fn render_outline(&self) -> Result<String> {
        let structures = self.structures()?;
        let text = self.text();
        let chars: Vec<char> = text.chars().collect();
        let mut out = String::new();
        let mut covered = vec![false; chars.len()];
        for s in &structures {
            let Some((a, b)) = s.span else { continue };
            let prefix = match s.kind.as_str() {
                "heading1" => "# ",
                "heading2" => "## ",
                "heading3" => "### ",
                "list_item" => "- ",
                _ => "",
            };
            let segment: String = chars[a..=b.min(chars.len() - 1)].iter().collect();
            out.push_str(prefix);
            out.push_str(segment.trim_end_matches('\n'));
            out.push('\n');
            for c in covered.iter_mut().take(b + 1).skip(a) {
                *c = true;
            }
        }
        // Remaining (unstructured) text as a trailing body block.
        let body: String = chars
            .iter()
            .enumerate()
            .filter(|(i, _)| !covered[*i])
            .map(|(_, c)| *c)
            .collect();
        let body = body.trim();
        if !body.is_empty() {
            out.push_str(body);
            out.push('\n');
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use crate::ids::StyleId;
    use crate::textdb::TextDb;

    fn setup() -> (TextDb, crate::ids::UserId, crate::document::DocHandle) {
        let tdb = TextDb::in_memory();
        let u = tdb.create_user("alice").unwrap();
        let d = tdb.create_document("doc", u).unwrap();
        let h = tdb.open(d, u).unwrap();
        (tdb, u, h)
    }

    #[test]
    fn plain_text_renders_unchanged() {
        let (_tdb, _u, mut h) = setup();
        h.insert_text(0, "plain text").unwrap();
        assert_eq!(h.render_markup().unwrap(), "plain text");
    }

    #[test]
    fn style_runs_are_bracketed() {
        let (tdb, u, mut h) = setup();
        let bold = tdb.define_style("bold", "w=b", u).unwrap();
        h.insert_text(0, "ab cd ef").unwrap();
        h.apply_style(3, 2, bold).unwrap();
        assert_eq!(h.render_markup().unwrap(), "ab [s:bold]cd[/s] ef");
        // Style to the end of the document closes at EOF.
        h.apply_style(6, 2, bold).unwrap();
        assert_eq!(
            h.render_markup().unwrap(),
            "ab [s:bold]cd[/s] [s:bold]ef[/s]"
        );
    }

    #[test]
    fn structure_notes_and_objects_render() {
        let (_tdb, _u, mut h) = setup();
        h.insert_text(0, "Title body").unwrap();
        h.set_structure(0, 5, "heading1").unwrap();
        h.add_note(6, 4, "check").unwrap();
        h.insert_object(10, "image", "pic", vec![1]).unwrap();
        let m = h.render_markup().unwrap();
        assert_eq!(
            m,
            "«heading1»Title«/heading1» ⟦body⟧{author#1: check}[obj:pic]"
        );
    }

    #[test]
    fn unknown_style_renders_with_id() {
        let (_tdb, _u, mut h) = setup();
        h.insert_text(0, "x").unwrap();
        // Apply a style id that has no definition row.
        h.apply_style(0, 1, StyleId(999)).unwrap();
        assert_eq!(h.render_markup().unwrap(), "[s:style#999]x[/s]");
    }

    #[test]
    fn outline_export() {
        let (_tdb, _u, mut h) = setup();
        h.insert_text(0, "Heading\nsome body text\nItem one")
            .unwrap();
        h.set_structure(0, 7, "heading1").unwrap();
        h.set_structure(23, 8, "list_item").unwrap();
        let o = h.render_outline().unwrap();
        assert!(o.contains("# Heading"));
        assert!(o.contains("- Item one"));
        assert!(o.contains("some body text"));
    }
}
