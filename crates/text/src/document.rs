//! Open documents: the `DocHandle`.
//!
//! A `DocHandle` is what an editor client holds for an open document. It
//! caches the character chain (a [`Chain`] position index plus per-char
//! info) and funnels every edit through database transactions. The cache
//! only ever contains *committed* state: each editing call commits
//! synchronously, and remote editors' committed operations are applied
//! through [`DocHandle::apply_remote`] (fed by the collaboration bus) or
//! by a full [`DocHandle::refresh`].

use std::collections::HashMap;

use tendax_storage::{Transaction, Value};

use crate::chain::Chain;
use crate::error::{Result, TextError};
use crate::ids::{CharId, DocId, StyleId, UserId};
use crate::ops::Effect;
use crate::security::Permission;
use crate::textdb::TextDb;

/// Cached per-character state (mirror of the `chars` row).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CharInfo {
    pub ch: char,
    pub deleted: bool,
    pub style: StyleId,
    pub author: UserId,
    pub created_at: i64,
    pub version: i64,
    pub src_doc: DocId,
    pub src_char: CharId,
    pub external_src: Option<String>,
}

/// An open document bound to a user.
#[derive(Debug)]
pub struct DocHandle {
    pub(crate) tdb: TextDb,
    pub(crate) doc: DocId,
    pub(crate) user: UserId,
    pub(crate) chain: Chain,
    pub(crate) cache: HashMap<CharId, CharInfo>,
    /// Snapshot (commit) timestamp of the last full rebuild: everything
    /// committed at or before this is reflected in the cache.
    pub(crate) synced_ts: tendax_storage::Ts,
    /// When set, edits run their transactions against the handle's
    /// *base version* — `max(synced_ts, last own commit)` — instead of a
    /// fresh snapshot: the replica model, where an edit is validated
    /// against the state its author actually saw. Commutative-descriptor
    /// writes then merge across everything committed since the base;
    /// true overlaps still conflict and retry.
    pub(crate) pinned_base: bool,
    /// Commit timestamp of this handle's newest own edit (own edits are
    /// folded into the cache as they commit, ahead of `synced_ts`).
    pub(crate) last_commit_ts: tendax_storage::Ts,
}

impl TextDb {
    /// Open `doc` as `user`: checks [`Permission::Read`], records a read
    /// event (metadata for dynamic folders / ranking), and builds the
    /// position index from the stored character chain.
    pub fn open(&self, doc: DocId, user: UserId) -> Result<DocHandle> {
        self.check_permission(doc, user, Permission::Read)?;
        let mut handle = DocHandle {
            tdb: self.clone(),
            doc,
            user,
            chain: Chain::new(),
            cache: HashMap::new(),
            synced_ts: 0,
            pinned_base: false,
            last_commit_ts: 0,
        };
        handle.rebuild()?;
        // Read event in its own transaction: opening is itself an action
        // that generates creation-process metadata.
        let mut txn = self.database().begin();
        txn.insert(
            self.tables().reads,
            tendax_storage::Row::new(vec![
                doc.value(),
                user.value(),
                Value::Timestamp(self.now()),
            ]),
        )?;
        txn.commit()?;
        Ok(handle)
    }
}

impl DocHandle {
    pub fn doc(&self) -> DocId {
        self.doc
    }

    pub fn user(&self) -> UserId {
        self.user
    }

    pub fn textdb(&self) -> &TextDb {
        &self.tdb
    }

    /// Visible document length in characters.
    pub fn len(&self) -> usize {
        self.chain.visible_len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The visible text.
    pub fn text(&self) -> String {
        self.chain
            .iter_visible()
            .into_iter()
            .map(|id| self.cache[&id].ch)
            .collect()
    }

    /// Visible text of `[pos, pos + len)` (clamped at document end).
    pub fn text_range(&self, pos: usize, len: usize) -> String {
        self.chain
            .visible_range(pos, len)
            .into_iter()
            .map(|id| self.cache[&id].ch)
            .collect()
    }

    /// The character id at visible position `pos`.
    pub fn char_at(&self, pos: usize) -> Option<CharId> {
        self.chain.id_at_visible(pos)
    }

    /// Cached info for a character (visible or tombstoned).
    pub fn char_info(&self, id: CharId) -> Option<&CharInfo> {
        self.cache.get(&id)
    }

    /// Visible position of a character id.
    pub fn position_of(&self, id: CharId) -> Option<usize> {
        self.chain.visible_rank(id)
    }

    /// Caret position immediately after `anchor`, even if the anchor has
    /// been tombstoned by a remote delete — the primitive an editor uses
    /// to keep its cursor attached to the text it was typed next to.
    pub fn caret_after(&self, anchor: CharId) -> Option<usize> {
        let rank = self.chain.total_rank(anchor)?;
        Some(self.chain.visible_count_through(rank))
    }

    /// Total chain length including tombstones (exposed for mining).
    pub fn chain_len(&self) -> usize {
        self.chain.total_len()
    }

    /// The full chain in order — tombstones included — as
    /// `(id, ch, deleted, style)` tuples. This is the wire snapshot a
    /// remote replica needs to mirror the document: committed effects
    /// anchor on chain predecessors that may themselves be tombstoned,
    /// so a live-text-only snapshot could not replay them.
    pub fn snapshot_chars(&self) -> Vec<(CharId, char, bool, StyleId)> {
        self.chain
            .iter_total()
            .into_iter()
            .map(|id| {
                let info = &self.cache[&id];
                (id, info.ch, info.deleted, info.style)
            })
            .collect()
    }

    /// Commit timestamp of the last full rebuild: remote events with a
    /// commit at or below this are already reflected in the cache.
    pub fn synced_ts(&self) -> tendax_storage::Ts {
        self.synced_ts
    }

    /// Number of whitespace-separated words in the visible text.
    pub fn word_count(&self) -> usize {
        self.text().split_whitespace().count()
    }

    /// Visible position of the first occurrence of `needle` at or after
    /// `from`.
    pub fn find(&self, needle: &str, from: usize) -> Option<usize> {
        if needle.is_empty() {
            return Some(from.min(self.len()));
        }
        let chars: Vec<char> = self.text().chars().collect();
        let pat: Vec<char> = needle.chars().collect();
        if from + pat.len() > chars.len() {
            return None;
        }
        (from..=chars.len() - pat.len()).find(|&i| chars[i..i + pat.len()] == pat[..])
    }

    /// Discard the cache and rebuild it from the database.
    pub fn refresh(&mut self) -> Result<()> {
        self.rebuild()
    }

    pub(crate) fn rebuild(&mut self) -> Result<()> {
        let t = self.tdb.tables();
        let txn = self.tdb.database().begin();
        self.synced_ts = txn.snapshot_ts();
        let rows = txn.index_lookup(t.chars, "chars_by_doc", &[self.doc.value()])?;

        let mut infos: HashMap<CharId, (CharInfo, CharId /*next*/, CharId /*prev*/)> =
            HashMap::with_capacity(rows.len());
        let mut head = CharId::NONE;
        for (rid, row) in &rows {
            let id = CharId::from_row(*rid);
            let prev = row.get(1).map(CharId::from_value).unwrap_or(CharId::NONE);
            let next = row.get(2).map(CharId::from_value).unwrap_or(CharId::NONE);
            let info = CharInfo {
                ch: row
                    .get(3)
                    .and_then(|v| v.as_text())
                    .and_then(|s| s.chars().next())
                    .unwrap_or('\u{FFFD}'),
                author: row.get(4).map(UserId::from_value).unwrap_or(UserId::NONE),
                created_at: row.get(5).and_then(|v| v.as_timestamp()).unwrap_or(0),
                version: row.get(6).and_then(|v| v.as_int()).unwrap_or(0),
                deleted: row.get(7).and_then(|v| v.as_bool()).unwrap_or(false),
                style: row
                    .get(10)
                    .map(StyleId::from_value)
                    .unwrap_or(StyleId::NONE),
                src_doc: row.get(11).map(DocId::from_value).unwrap_or(DocId::NONE),
                src_char: row.get(12).map(CharId::from_value).unwrap_or(CharId::NONE),
                external_src: row.get(13).and_then(|v| v.as_text()).map(str::to_owned),
            };
            if prev.is_none() {
                if !head.is_none() {
                    return Err(TextError::ChainCorrupt(format!(
                        "two chain heads in {}: {head} and {id}",
                        self.doc
                    )));
                }
                head = id;
            }
            infos.insert(id, (info, next, prev));
        }

        let mut order = Vec::with_capacity(infos.len());
        let mut cache = HashMap::with_capacity(infos.len());
        let mut cur = head;
        while !cur.is_none() {
            let (info, next, _) = infos.get(&cur).ok_or_else(|| {
                TextError::ChainCorrupt(format!("dangling next pointer to {cur}"))
            })?;
            order.push((cur, !info.deleted));
            cache.insert(cur, info.clone());
            cur = *next;
            if order.len() > infos.len() {
                return Err(TextError::ChainCorrupt(format!(
                    "cycle in character chain of {}",
                    self.doc
                )));
            }
        }
        if order.len() != infos.len() {
            return Err(TextError::ChainCorrupt(format!(
                "chain walk reached {} of {} characters in {}",
                order.len(),
                infos.len(),
                self.doc
            )));
        }
        self.chain = Chain::build(order)
            .map_err(|e| TextError::ChainCorrupt(format!("rebuilding {}: {e}", self.doc)))?;
        self.cache = cache;
        Ok(())
    }

    /// Whether `effects` can be applied against the current cache: every
    /// insert anchor and every touched character must already be known
    /// (or be created earlier in the same effect list). Publishing
    /// happens after commit outside the commit lock, so a fast editor
    /// can broadcast an operation that *depends* on a slightly older,
    /// not-yet-delivered one — callers hold such events back until their
    /// dependencies arrive (see `tendax-collab`'s reorder buffer).
    pub fn effects_applicable(&self, effects: &[Effect]) -> bool {
        let mut introduced: std::collections::HashSet<CharId> = std::collections::HashSet::new();
        for e in effects {
            match e {
                Effect::Insert { char, prev, .. } => {
                    if let Some(p) = prev {
                        if !self.chain.contains(*p) && !introduced.contains(p) {
                            return false;
                        }
                    }
                    introduced.insert(*char);
                }
                Effect::Delete { char, .. }
                | Effect::Undelete { char }
                | Effect::SetStyle { char, .. } => {
                    if !self.chain.contains(*char) && !introduced.contains(char) {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Apply a remote editor's committed effects to the local cache.
    ///
    /// Effects arrive in commit order from the collaboration bus; the
    /// application is idempotent, so redelivery (including echo of this
    /// handle's own operations) is harmless. Callers must ensure
    /// [`DocHandle::effects_applicable`] (out-of-order delivery is
    /// buffered by the collaboration layer).
    ///
    /// Returns [`TextError::StaleCache`] if an insert anchor turns out
    /// to be missing anyway — the cache has drifted from the database
    /// and the caller should refresh (which supersedes the effects) and
    /// retry. Nothing has been committed on this path, so the retry is
    /// safe.
    pub fn apply_remote(&mut self, effects: &[Effect]) -> Result<()> {
        for e in effects {
            match e {
                Effect::Insert {
                    char,
                    prev,
                    ch,
                    author,
                    ts,
                    style,
                    src_doc,
                    src_char,
                    external,
                } => {
                    if self.chain.contains(*char) {
                        continue; // echo of our own op or redelivery
                    }
                    // Even with `effects_applicable` vetting, a remote
                    // stream can outrun this cache (reorder-buffer
                    // overflow, a peer's incoherent republish): treat a
                    // bad anchor as a recoverable stale cache, never a
                    // crash.
                    if self.chain.insert_after(*prev, *char, true).is_err() {
                        return Err(TextError::StaleCache(self.doc));
                    }
                    self.cache.insert(
                        *char,
                        CharInfo {
                            ch: *ch,
                            deleted: false,
                            style: *style,
                            author: *author,
                            created_at: *ts,
                            version: 0,
                            src_doc: *src_doc,
                            src_char: *src_char,
                            external_src: external.clone(),
                        },
                    );
                }
                Effect::Delete { char, by, ts } => {
                    self.chain.set_visible(*char, false);
                    if let Some(info) = self.cache.get_mut(char) {
                        info.deleted = true;
                        let _ = (by, ts);
                    }
                }
                Effect::Undelete { char } => {
                    self.chain.set_visible(*char, true);
                    if let Some(info) = self.cache.get_mut(char) {
                        info.deleted = false;
                    }
                }
                Effect::SetStyle { char, new, .. } => {
                    if let Some(info) = self.cache.get_mut(char) {
                        info.style = *new;
                        info.version += 1;
                    }
                }
            }
        }
        Ok(())
    }

    /// Validate that `[pos, pos+len)` addresses visible characters.
    pub(crate) fn check_range(&self, pos: usize, len: usize) -> Result<()> {
        let doc_len = self.len();
        if pos + len > doc_len {
            return Err(TextError::InvalidPosition { pos, len, doc_len });
        }
        Ok(())
    }

    /// Pin (or unpin) edit transactions to this handle's base version.
    ///
    /// A pinned handle behaves like a remote replica: each edit commits
    /// against the snapshot the handle last synced (advanced past its
    /// own commits), so the engine's commit validation — not wall-clock
    /// interleaving — decides whether concurrent edits commute. Unpinned
    /// handles (the default) take a fresh snapshot per edit.
    pub fn pin_base(&mut self, pinned: bool) {
        self.pinned_base = pinned;
    }

    /// Whether edits are validated against the handle's base version.
    pub fn base_pinned(&self) -> bool {
        self.pinned_base
    }

    /// Record an own-edit commit so the pinned base covers it.
    pub(crate) fn note_commit(&mut self, ts: tendax_storage::Ts) {
        self.last_commit_ts = self.last_commit_ts.max(ts);
    }

    /// Begin a transaction on the underlying database: at the handle's
    /// base version when pinned, at a fresh snapshot otherwise. If
    /// vacuum has pruned past a pinned base the handle falls back to a
    /// fresh snapshot — the caller's next refresh re-anchors it.
    pub(crate) fn begin(&self) -> Transaction {
        if self.pinned_base {
            let base = self.synced_ts.max(self.last_commit_ts);
            if let Ok(txn) = self.tdb.database().begin_at(base) {
                return txn;
            }
        }
        self.tdb.database().begin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (TextDb, UserId, DocId) {
        let tdb = TextDb::in_memory();
        let user = tdb.create_user("alice").unwrap();
        let doc = tdb.create_document("d", user).unwrap();
        (tdb, user, doc)
    }

    #[test]
    fn open_empty_document() {
        let (tdb, user, doc) = setup();
        let h = tdb.open(doc, user).unwrap();
        assert_eq!(h.len(), 0);
        assert!(h.is_empty());
        assert_eq!(h.text(), "");
        assert_eq!(h.char_at(0), None);
    }

    #[test]
    fn open_records_read_event() {
        let (tdb, user, doc) = setup();
        let _h = tdb.open(doc, user).unwrap();
        let _h2 = tdb.open(doc, user).unwrap();
        let txn = tdb.database().begin();
        let reads = txn
            .scan(tdb.tables().reads, &tendax_storage::Predicate::True)
            .unwrap();
        assert_eq!(reads.len(), 2);
    }

    #[test]
    fn open_requires_read_permission() {
        let (tdb, alice, doc) = setup();
        let bob = tdb.create_user("bob").unwrap();
        tdb.set_access(
            doc,
            alice,
            crate::security::Principal::User(alice),
            Permission::Read,
            true,
        )
        .unwrap();
        assert!(matches!(
            tdb.open(doc, bob),
            Err(TextError::PermissionDenied { .. })
        ));
    }

    #[test]
    fn find_and_word_count() {
        let (tdb, user, doc) = setup();
        let mut h = tdb.open(doc, user).unwrap();
        h.insert_text(0, "the quick brown fox the end").unwrap();
        assert_eq!(h.word_count(), 6);
        assert_eq!(h.find("the", 0), Some(0));
        assert_eq!(h.find("the", 1), Some(20));
        assert_eq!(h.find("fox", 0), Some(16));
        assert_eq!(h.find("zebra", 0), None);
        assert_eq!(h.find("", 3), Some(3));
        assert_eq!(h.find("end", 25), None); // past the last match
    }

    #[test]
    fn check_range_rejects_out_of_bounds() {
        let (tdb, user, doc) = setup();
        let h = tdb.open(doc, user).unwrap();
        assert!(matches!(
            h.check_range(0, 1),
            Err(TextError::InvalidPosition { .. })
        ));
        assert!(h.check_range(0, 0).is_ok());
    }
}
