//! The character chain position index.
//!
//! TeNDaX stores a document's characters as database tuples linked by
//! `prev`/`next` references; deleted characters remain in the chain as
//! tombstones (they carry history, lineage and undo state). An editor,
//! however, addresses text by *visible position*. This module provides the
//! per-open-document cache that maps between the two: an order-statistics
//! treap over the full chain (tombstones included) where each node carries
//! a visibility flag, giving `O(log n)`:
//!
//! * visible position → character id ([`Chain::id_at_visible`])
//! * character id → visible position ([`Chain::visible_rank`])
//! * insertion after an arbitrary chain element ([`Chain::insert_after`])
//! * visibility toggling for delete/undelete ([`Chain::set_visible`])
//!
//! The treap is a pure cache: it is rebuilt from the database on open and
//! maintained incrementally from committed operations. The ablation bench
//! `ablation_position_index` measures what it buys over a naive scan.

use std::collections::HashMap;

use crate::ids::CharId;

const NIL: usize = usize::MAX;

#[derive(Debug, Clone)]
struct Node {
    id: CharId,
    pri: u64,
    left: usize,
    right: usize,
    parent: usize,
    /// Nodes in this subtree (tombstones included).
    total: usize,
    /// Visible nodes in this subtree.
    visible_count: usize,
    visible: bool,
}

/// Order-statistics treap over a document's character chain.
#[derive(Debug, Clone, Default)]
pub struct Chain {
    nodes: Vec<Node>,
    map: HashMap<CharId, usize>,
    root: usize,
}

/// A structural edit referenced a character the cache doesn't agree on.
/// Both variants mean the cache is incoherent with the database — the
/// caller's recovery is a refresh/rebuild, not a data-level fixup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainError {
    /// `insert_after` was asked to add an id already in the chain.
    DuplicateId(CharId),
    /// The insertion anchor is not in the chain (stale anchor).
    UnknownAnchor(CharId),
}

impl std::fmt::Display for ChainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChainError::DuplicateId(id) => write!(f, "duplicate chain insert of {id}"),
            ChainError::UnknownAnchor(id) => write!(f, "anchor {id} not in chain"),
        }
    }
}

impl std::error::Error for ChainError {}

/// Deterministic priority: SplitMix64 of the character id. Char ids are
/// allocated sequentially, and SplitMix64 scatters them uniformly, which
/// is exactly what a treap needs — no RNG state to carry around.
fn priority(id: CharId) -> u64 {
    let mut z = id.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Chain {
    pub fn new() -> Self {
        Chain {
            nodes: Vec::new(),
            map: HashMap::new(),
            root: NIL,
        }
    }

    /// Build from the full chain in order (id, visible). Fails on a
    /// duplicate id (the anchor is always the previous item, so it can
    /// never be unknown).
    pub fn build(items: impl IntoIterator<Item = (CharId, bool)>) -> Result<Self, ChainError> {
        let mut chain = Chain::new();
        let mut last: Option<CharId> = None;
        for (id, visible) in items {
            chain.insert_after(last, id, visible)?;
            last = Some(id);
        }
        Ok(chain)
    }

    /// Total chain length, tombstones included.
    pub fn total_len(&self) -> usize {
        self.subtree_total(self.root)
    }

    /// Number of visible characters.
    pub fn visible_len(&self) -> usize {
        self.subtree_visible(self.root)
    }

    pub fn is_empty(&self) -> bool {
        self.total_len() == 0
    }

    pub fn contains(&self, id: CharId) -> bool {
        self.map.contains_key(&id)
    }

    pub fn is_visible(&self, id: CharId) -> Option<bool> {
        self.map.get(&id).map(|&n| self.nodes[n].visible)
    }

    fn subtree_total(&self, n: usize) -> usize {
        if n == NIL {
            0
        } else {
            self.nodes[n].total
        }
    }

    fn subtree_visible(&self, n: usize) -> usize {
        if n == NIL {
            0
        } else {
            self.nodes[n].visible_count
        }
    }

    fn update(&mut self, n: usize) {
        let (l, r) = (self.nodes[n].left, self.nodes[n].right);
        self.nodes[n].total = 1 + self.subtree_total(l) + self.subtree_total(r);
        self.nodes[n].visible_count =
            self.nodes[n].visible as usize + self.subtree_visible(l) + self.subtree_visible(r);
    }

    fn merge(&mut self, a: usize, b: usize) -> usize {
        if a == NIL {
            return b;
        }
        if b == NIL {
            return a;
        }
        if self.nodes[a].pri > self.nodes[b].pri {
            let r = self.merge(self.nodes[a].right, b);
            self.nodes[a].right = r;
            self.nodes[r].parent = a;
            self.update(a);
            a
        } else {
            let l = self.merge(a, self.nodes[b].left);
            self.nodes[b].left = l;
            self.nodes[l].parent = b;
            self.update(b);
            b
        }
    }

    /// Split into (first `k` by total order, rest).
    fn split(&mut self, t: usize, k: usize) -> (usize, usize) {
        if t == NIL {
            return (NIL, NIL);
        }
        let lsize = self.subtree_total(self.nodes[t].left);
        if k <= lsize {
            let (l, m) = self.split(self.nodes[t].left, k);
            self.nodes[t].left = m;
            if m != NIL {
                self.nodes[m].parent = t;
            }
            self.update(t);
            self.nodes[t].parent = NIL;
            if l != NIL {
                self.nodes[l].parent = NIL;
            }
            (l, t)
        } else {
            let (m, r) = self.split(self.nodes[t].right, k - lsize - 1);
            self.nodes[t].right = m;
            if m != NIL {
                self.nodes[m].parent = t;
            }
            self.update(t);
            self.nodes[t].parent = NIL;
            if r != NIL {
                self.nodes[r].parent = NIL;
            }
            (t, r)
        }
    }

    /// Number of chain elements strictly before `id` (tombstones included).
    pub fn total_rank(&self, id: CharId) -> Option<usize> {
        let &n = self.map.get(&id)?;
        let mut rank = self.subtree_total(self.nodes[n].left);
        let mut cur = n;
        loop {
            let p = self.nodes[cur].parent;
            if p == NIL {
                break;
            }
            if self.nodes[p].right == cur {
                rank += self.subtree_total(self.nodes[p].left) + 1;
            }
            cur = p;
        }
        Some(rank)
    }

    /// Visible position of `id`, if it is visible.
    pub fn visible_rank(&self, id: CharId) -> Option<usize> {
        let &n = self.map.get(&id)?;
        if !self.nodes[n].visible {
            return None;
        }
        let mut rank = self.subtree_visible(self.nodes[n].left);
        let mut cur = n;
        loop {
            let p = self.nodes[cur].parent;
            if p == NIL {
                break;
            }
            if self.nodes[p].right == cur {
                rank += self.subtree_visible(self.nodes[p].left) + self.nodes[p].visible as usize;
            }
            cur = p;
        }
        Some(rank)
    }

    /// Chain element at total-order position `rank`.
    pub fn id_at_total(&self, mut rank: usize) -> Option<CharId> {
        let mut cur = self.root;
        if rank >= self.total_len() {
            return None;
        }
        loop {
            let l = self.nodes[cur].left;
            let lsize = self.subtree_total(l);
            if rank < lsize {
                cur = l;
            } else if rank == lsize {
                return Some(self.nodes[cur].id);
            } else {
                rank -= lsize + 1;
                cur = self.nodes[cur].right;
            }
        }
    }

    /// Visible character at visible position `rank`.
    pub fn id_at_visible(&self, mut rank: usize) -> Option<CharId> {
        if rank >= self.visible_len() {
            return None;
        }
        let mut cur = self.root;
        loop {
            let l = self.nodes[cur].left;
            let lvis = self.subtree_visible(l);
            if rank < lvis {
                cur = l;
            } else if rank == lvis && self.nodes[cur].visible {
                return Some(self.nodes[cur].id);
            } else {
                rank -= lvis + self.nodes[cur].visible as usize;
                cur = self.nodes[cur].right;
            }
        }
    }

    /// Number of *visible* characters among the first `total_rank + 1`
    /// chain elements — i.e. the caret position immediately after the
    /// element at `total_rank`, even when that element is a tombstone.
    /// This is what keeps a cursor anchored to a character as remote
    /// edits land around (or delete) it.
    pub fn visible_count_through(&self, total_rank: usize) -> usize {
        let mut remaining = total_rank + 1;
        let mut cur = self.root;
        let mut count = 0;
        while cur != NIL && remaining > 0 {
            let l = self.nodes[cur].left;
            let lsize = self.subtree_total(l);
            if remaining <= lsize {
                cur = l;
            } else {
                count += self.subtree_visible(l);
                remaining -= lsize;
                if remaining == 1 {
                    count += self.nodes[cur].visible as usize;
                    break;
                }
                count += self.nodes[cur].visible as usize;
                remaining -= 1;
                cur = self.nodes[cur].right;
            }
        }
        count
    }

    /// Insert `id` immediately after `anchor` in the total order (`None`
    /// inserts at the chain head).
    ///
    /// Returns [`ChainError`] if `anchor` is not in the chain or `id`
    /// already is. Both indicate the cache has drifted from the
    /// database — in a shared collab server that happens when a remote
    /// effect outruns a session's view, so it must be a recoverable
    /// (refresh + retry) condition, not a process abort. The
    /// `debug_assert!`s keep the old fail-fast behaviour in debug builds
    /// at call sites that have already validated their anchors.
    pub fn insert_after(
        &mut self,
        anchor: Option<CharId>,
        id: CharId,
        visible: bool,
    ) -> Result<(), ChainError> {
        if self.map.contains_key(&id) {
            return Err(ChainError::DuplicateId(id));
        }
        let rank = match anchor {
            None => 0,
            Some(a) => match self.total_rank(a) {
                Some(r) => r + 1,
                None => return Err(ChainError::UnknownAnchor(a)),
            },
        };
        let n = self.nodes.len();
        self.nodes.push(Node {
            id,
            pri: priority(id),
            left: NIL,
            right: NIL,
            parent: NIL,
            total: 1,
            visible_count: visible as usize,
            visible,
        });
        self.map.insert(id, n);
        let (l, r) = self.split(self.root, rank);
        let lr = self.merge(l, n);
        self.root = self.merge(lr, r);
        if self.root != NIL {
            self.nodes[self.root].parent = NIL;
        }
        Ok(())
    }

    /// Toggle visibility (delete = false, undelete = true). Returns the
    /// previous visibility, or `None` if the id is unknown.
    pub fn set_visible(&mut self, id: CharId, visible: bool) -> Option<bool> {
        let &n = self.map.get(&id)?;
        let was = self.nodes[n].visible;
        if was != visible {
            self.nodes[n].visible = visible;
            let mut cur = n;
            while cur != NIL {
                self.update(cur);
                cur = self.nodes[cur].parent;
            }
        }
        Some(was)
    }

    /// All chain ids in order (tombstones included).
    pub fn iter_total(&self) -> Vec<CharId> {
        let mut out = Vec::with_capacity(self.total_len());
        self.in_order(self.root, &mut |node: &Node| out.push(node.id));
        out
    }

    /// Visible ids in order.
    pub fn iter_visible(&self) -> Vec<CharId> {
        let mut out = Vec::with_capacity(self.visible_len());
        self.in_order(self.root, &mut |node: &Node| {
            if node.visible {
                out.push(node.id);
            }
        });
        out
    }

    fn in_order(&self, root: usize, f: &mut impl FnMut(&Node)) {
        // Iterative traversal: documents can be large and recursion depth
        // is probabilistic in a treap.
        let mut stack = Vec::new();
        let mut cur = root;
        while cur != NIL || !stack.is_empty() {
            while cur != NIL {
                stack.push(cur);
                cur = self.nodes[cur].left;
            }
            let n = stack.pop().expect("stack non-empty by loop condition");
            f(&self.nodes[n]);
            cur = self.nodes[n].right;
        }
    }

    /// The visible character ids spanning positions `[pos, pos + len)`.
    pub fn visible_range(&self, pos: usize, len: usize) -> Vec<CharId> {
        (pos..pos + len)
            .map_while(|p| self.id_at_visible(p))
            .collect()
    }

    #[cfg(test)]
    fn check_invariants(&self) {
        fn walk(c: &Chain, n: usize, parent: usize) -> (usize, usize) {
            if n == NIL {
                return (0, 0);
            }
            assert_eq!(c.nodes[n].parent, parent, "parent pointer broken");
            if parent != NIL {
                assert!(c.nodes[n].pri <= c.nodes[parent].pri, "heap order broken");
            }
            let (lt, lv) = walk(c, c.nodes[n].left, n);
            let (rt, rv) = walk(c, c.nodes[n].right, n);
            assert_eq!(c.nodes[n].total, lt + rt + 1, "total size broken");
            assert_eq!(
                c.nodes[n].visible_count,
                lv + rv + c.nodes[n].visible as usize,
                "visible size broken"
            );
            (lt + rt + 1, lv + rv + c.nodes[n].visible as usize)
        }
        walk(self, self.root, NIL);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ids(v: &[u64]) -> Vec<CharId> {
        v.iter().map(|&x| CharId(x)).collect()
    }

    #[test]
    fn build_and_iterate() {
        let c = Chain::build([(CharId(1), true), (CharId(2), false), (CharId(3), true)]).unwrap();
        assert_eq!(c.total_len(), 3);
        assert_eq!(c.visible_len(), 2);
        assert_eq!(c.iter_total(), ids(&[1, 2, 3]));
        assert_eq!(c.iter_visible(), ids(&[1, 3]));
        c.check_invariants();
    }

    #[test]
    fn insert_at_head_and_after() {
        let mut c = Chain::new();
        c.insert_after(None, CharId(10), true).unwrap();
        c.insert_after(None, CharId(20), true).unwrap(); // new head
        c.insert_after(Some(CharId(10)), CharId(30), true).unwrap();
        assert_eq!(c.iter_total(), ids(&[20, 10, 30]));
        c.check_invariants();
    }

    #[test]
    fn visible_position_mapping_skips_tombstones() {
        let c = Chain::build([
            (CharId(1), true),
            (CharId(2), false),
            (CharId(3), true),
            (CharId(4), false),
            (CharId(5), true),
        ])
        .unwrap();
        assert_eq!(c.id_at_visible(0), Some(CharId(1)));
        assert_eq!(c.id_at_visible(1), Some(CharId(3)));
        assert_eq!(c.id_at_visible(2), Some(CharId(5)));
        assert_eq!(c.id_at_visible(3), None);
        assert_eq!(c.visible_rank(CharId(3)), Some(1));
        assert_eq!(c.visible_rank(CharId(2)), None); // tombstone
        assert_eq!(c.total_rank(CharId(2)), Some(1));
        assert_eq!(c.id_at_total(3), Some(CharId(4)));
    }

    #[test]
    fn visible_count_through_counts_inclusively() {
        let c = Chain::build([
            (CharId(1), true),
            (CharId(2), false),
            (CharId(3), true),
            (CharId(4), false),
            (CharId(5), true),
        ])
        .unwrap();
        assert_eq!(c.visible_count_through(0), 1); // through id 1
        assert_eq!(c.visible_count_through(1), 1); // tombstone adds nothing
        assert_eq!(c.visible_count_through(2), 2);
        assert_eq!(c.visible_count_through(3), 2);
        assert_eq!(c.visible_count_through(4), 3);
        // Agreement with a naive count for a larger randomized chain.
        let items: Vec<(CharId, bool)> = (1..=200u64).map(|i| (CharId(i), i % 3 != 0)).collect();
        let c = Chain::build(items.clone()).unwrap();
        for k in 0..items.len() {
            let naive = items[..=k].iter().filter(|(_, v)| *v).count();
            assert_eq!(c.visible_count_through(k), naive, "at rank {k}");
        }
    }

    #[test]
    fn set_visible_toggles_and_reports_previous() {
        let mut c = Chain::build([(CharId(1), true), (CharId(2), true)]).unwrap();
        assert_eq!(c.set_visible(CharId(1), false), Some(true));
        assert_eq!(c.visible_len(), 1);
        assert_eq!(c.id_at_visible(0), Some(CharId(2)));
        assert_eq!(c.set_visible(CharId(1), false), Some(false)); // idempotent
        assert_eq!(c.set_visible(CharId(1), true), Some(false));
        assert_eq!(c.visible_len(), 2);
        assert_eq!(c.set_visible(CharId(99), true), None);
        c.check_invariants();
    }

    #[test]
    fn visible_range_extraction() {
        let c = Chain::build([
            (CharId(1), true),
            (CharId(2), false),
            (CharId(3), true),
            (CharId(4), true),
        ])
        .unwrap();
        assert_eq!(c.visible_range(1, 2), ids(&[3, 4]));
        assert_eq!(c.visible_range(2, 5), ids(&[4])); // clamped at end
        assert!(c.visible_range(9, 2).is_empty());
    }

    /// Regression (stale-anchor panic): incoherent edits must surface as
    /// recoverable errors, not process aborts — a shared collab server
    /// would otherwise lose every session to one stale cache.
    #[test]
    fn duplicate_insert_is_an_error_not_a_panic() {
        let mut c = Chain::new();
        c.insert_after(None, CharId(1), true).unwrap();
        assert_eq!(
            c.insert_after(None, CharId(1), true),
            Err(ChainError::DuplicateId(CharId(1)))
        );
        // The failed insert must not have corrupted the chain.
        c.check_invariants();
        assert_eq!(c.total_len(), 1);
    }

    #[test]
    fn unknown_anchor_is_an_error_not_a_panic() {
        let mut c = Chain::new();
        assert_eq!(
            c.insert_after(Some(CharId(42)), CharId(1), true),
            Err(ChainError::UnknownAnchor(CharId(42)))
        );
        c.check_invariants();
        assert!(c.is_empty());
        // The rejected id was never registered; inserting it properly works.
        c.insert_after(None, CharId(1), true).unwrap();
        assert_eq!(c.total_len(), 1);
    }

    #[test]
    fn large_sequential_build_stays_balanced_enough() {
        // Sequential ids through SplitMix64 priorities: depth should be
        // logarithmic in practice. Just verify correctness at size.
        let n = 10_000u64;
        let mut c = Chain::new();
        let mut last = None;
        for i in 1..=n {
            c.insert_after(last, CharId(i), true).unwrap();
            last = Some(CharId(i));
        }
        assert_eq!(c.visible_len(), n as usize);
        assert_eq!(c.id_at_visible(0), Some(CharId(1)));
        assert_eq!(c.id_at_visible((n - 1) as usize), Some(CharId(n)));
        assert_eq!(c.visible_rank(CharId(5000)), Some(4999));
    }

    // ------------------------------------------------------ property tests

    #[derive(Debug, Clone)]
    enum ChainOp {
        InsertAfterRank(usize),
        ToggleAtRank(usize),
    }

    fn arb_chain_op() -> impl Strategy<Value = ChainOp> {
        prop_oneof![
            any::<usize>().prop_map(ChainOp::InsertAfterRank),
            any::<usize>().prop_map(ChainOp::ToggleAtRank),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// The treap agrees with a naive Vec model under arbitrary edits.
        #[test]
        fn chain_matches_vec_model(script in proptest::collection::vec(arb_chain_op(), 1..120)) {
            let mut chain = Chain::new();
            let mut model: Vec<(CharId, bool)> = Vec::new();
            let mut next_id = 1u64;

            for op in script {
                match op {
                    ChainOp::InsertAfterRank(r) => {
                        let id = CharId(next_id);
                        next_id += 1;
                        if model.is_empty() {
                            chain.insert_after(None, id, true).unwrap();
                            model.insert(0, (id, true));
                        } else {
                            let r = r % (model.len() + 1);
                            let anchor = if r == 0 { None } else { Some(model[r - 1].0) };
                            chain.insert_after(anchor, id, true).unwrap();
                            model.insert(r, (id, true));
                        }
                    }
                    ChainOp::ToggleAtRank(r) => {
                        if !model.is_empty() {
                            let r = r % model.len();
                            let (id, vis) = model[r];
                            chain.set_visible(id, !vis);
                            model[r].1 = !vis;
                        }
                    }
                }
            }

            chain.check_invariants();
            let expect_total: Vec<CharId> = model.iter().map(|(id, _)| *id).collect();
            let expect_visible: Vec<CharId> =
                model.iter().filter(|(_, v)| *v).map(|(id, _)| *id).collect();
            prop_assert_eq!(chain.iter_total(), expect_total);
            prop_assert_eq!(&chain.iter_visible(), &expect_visible);
            prop_assert_eq!(chain.visible_len(), expect_visible.len());
            prop_assert_eq!(chain.total_len(), model.len());
            for (i, id) in expect_visible.iter().enumerate() {
                prop_assert_eq!(chain.id_at_visible(i), Some(*id));
                prop_assert_eq!(chain.visible_rank(*id), Some(i));
            }
        }
    }
}
