//! Typed identifiers for the text extension.
//!
//! Every entity in TeNDaX is a database row; these newtypes wrap the row
//! ids so that a `CharId` can never be confused with a `UserId` at compile
//! time. `0` is reserved as "none" for nullable references stored in the
//! database.

use tendax_storage::{RowId, Value};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u64);

        impl $name {
            /// The sentinel "no reference" id.
            pub const NONE: $name = $name(0);

            pub fn is_none(self) -> bool {
                self.0 == 0
            }

            pub fn from_row(row: RowId) -> Self {
                $name(row.0)
            }

            pub fn row(self) -> RowId {
                RowId(self.0)
            }

            /// As a database value (`Id`).
            pub fn value(self) -> Value {
                Value::Id(self.0)
            }

            /// As a nullable database value (`Null` when none).
            pub fn opt_value(self) -> Value {
                if self.is_none() {
                    Value::Null
                } else {
                    Value::Id(self.0)
                }
            }

            /// From a (possibly null) database value.
            pub fn from_value(v: &Value) -> Self {
                match v {
                    Value::Id(x) => $name(*x),
                    _ => $name::NONE,
                }
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }
    };
}

id_type!(
    /// A document.
    DocId
);
id_type!(
    /// A single character tuple.
    CharId
);

impl CharId {
    /// Anchor token for this character's *outgoing* chain edge (its
    /// `next` link). Edits that splice new characters after this one
    /// write this edge; the token lets commit validation prove that two
    /// edits around different neighborhoods commute. The low bit keeps
    /// the two edges of one character distinct.
    pub fn next_edge(self) -> u64 {
        (self.0 << 1) | 1
    }

    /// Anchor token for this character's *incoming* chain edge (its
    /// `prev` link).
    pub fn prev_edge(self) -> u64 {
        self.0 << 1
    }
}
id_type!(
    /// A registered user.
    UserId
);
id_type!(
    /// A role (group of users).
    RoleId
);
id_type!(
    /// A named layout style.
    StyleId
);
id_type!(
    /// A note attached to a character range.
    NoteId
);
id_type!(
    /// An embedded object (picture, table).
    ObjectId
);
id_type!(
    /// An entry in the operation log.
    OpId
);
id_type!(
    /// A structure element (heading, paragraph, list, …).
    StructId
);
id_type!(
    /// A named document version snapshot.
    VersionId
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_roundtrips_through_nullable_value() {
        assert!(CharId::NONE.is_none());
        assert_eq!(CharId::NONE.opt_value(), Value::Null);
        assert_eq!(CharId::from_value(&Value::Null), CharId::NONE);
        assert_eq!(CharId::from_value(&Value::Id(5)), CharId(5));
        assert_eq!(CharId(5).opt_value(), Value::Id(5));
    }

    #[test]
    fn row_conversion() {
        let id = DocId::from_row(RowId(7));
        assert_eq!(id, DocId(7));
        assert_eq!(id.row(), RowId(7));
        assert_eq!(id.value(), Value::Id(7));
    }

    #[test]
    fn display_includes_type() {
        assert_eq!(UserId(3).to_string(), "UserId(3)");
    }
}
