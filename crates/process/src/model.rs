//! The workflow data model: tasks bound to document parts.

use tendax_text::{CharId, DocId, RoleId, UserId};

/// Identifier of a workflow task (a row in the `tasks` table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub u64);

impl TaskId {
    pub const NONE: TaskId = TaskId(0);

    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

impl std::fmt::Display for TaskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TaskId({})", self.0)
    }
}

/// Who a task is assigned to — a specific user or anyone holding a role
/// ("tasks such as translation or verification … can be assigned to
/// specific users or roles").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Assignee {
    User(UserId),
    Role(RoleId),
}

impl Assignee {
    pub(crate) fn kind_str(self) -> &'static str {
        match self {
            Assignee::User(_) => "user",
            Assignee::Role(_) => "role",
        }
    }

    pub(crate) fn id(self) -> u64 {
        match self {
            Assignee::User(u) => u.0,
            Assignee::Role(r) => r.0,
        }
    }
}

/// Lifecycle state of a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskState {
    /// Waiting (possibly on a predecessor).
    Pending,
    /// Completed successfully.
    Done,
    /// Explicitly rejected by the assignee.
    Rejected,
    /// Withdrawn by the workflow owner.
    Cancelled,
}

impl TaskState {
    pub fn as_str(self) -> &'static str {
        match self {
            TaskState::Pending => "pending",
            TaskState::Done => "done",
            TaskState::Rejected => "rejected",
            TaskState::Cancelled => "cancelled",
        }
    }

    #[allow(clippy::should_implement_trait)] // infallible-Option parse, not FromStr
    pub fn from_str(s: &str) -> Option<TaskState> {
        Some(match s {
            "pending" => TaskState::Pending,
            "done" => TaskState::Done,
            "rejected" => TaskState::Rejected,
            "cancelled" => TaskState::Cancelled,
            _ => return None,
        })
    }

    /// Terminal states never transition again.
    pub fn is_terminal(self) -> bool {
        !matches!(self, TaskState::Pending)
    }
}

/// Specification for creating a task.
#[derive(Debug, Clone)]
pub struct TaskSpec {
    pub name: String,
    pub description: String,
    pub assignee: Assignee,
    /// Optional due timestamp (engine clock).
    pub due: Option<i64>,
    /// Optional anchored document part the task refers to.
    pub range: Option<(CharId, CharId)>,
    /// Optional predecessor: this task only becomes actionable once the
    /// predecessor is done.
    pub predecessor: Option<TaskId>,
}

impl TaskSpec {
    pub fn new(name: impl Into<String>, assignee: Assignee) -> Self {
        TaskSpec {
            name: name.into(),
            description: String::new(),
            assignee,
            due: None,
            range: None,
            predecessor: None,
        }
    }

    pub fn description(mut self, d: impl Into<String>) -> Self {
        self.description = d.into();
        self
    }

    pub fn due(mut self, ts: i64) -> Self {
        self.due = Some(ts);
        self
    }

    pub fn range(mut self, from: CharId, to: CharId) -> Self {
        self.range = Some((from, to));
        self
    }

    pub fn after(mut self, pred: TaskId) -> Self {
        self.predecessor = Some(pred);
        self
    }
}

/// A task as read back from the database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Task {
    pub id: TaskId,
    pub doc: DocId,
    pub name: String,
    pub description: String,
    pub assignee: Assignee,
    pub created_by: UserId,
    pub created_at: i64,
    pub due: Option<i64>,
    pub state: TaskState,
    pub range: Option<(CharId, CharId)>,
    pub predecessor: Option<TaskId>,
    pub completed_by: Option<UserId>,
    pub completed_at: Option<i64>,
}

/// One audit-log entry of a task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskLogEntry {
    pub task: TaskId,
    pub ts: i64,
    pub user: UserId,
    pub action: String,
    pub note: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_roundtrip() {
        for s in [
            TaskState::Pending,
            TaskState::Done,
            TaskState::Rejected,
            TaskState::Cancelled,
        ] {
            assert_eq!(TaskState::from_str(s.as_str()), Some(s));
        }
        assert_eq!(TaskState::from_str("bogus"), None);
        assert!(!TaskState::Pending.is_terminal());
        assert!(TaskState::Done.is_terminal());
    }

    #[test]
    fn spec_builder() {
        let spec = TaskSpec::new("translate", Assignee::User(UserId(3)))
            .description("translate §2 to German")
            .due(99)
            .range(CharId(1), CharId(9))
            .after(TaskId(7));
        assert_eq!(spec.name, "translate");
        assert_eq!(spec.due, Some(99));
        assert_eq!(spec.range, Some((CharId(1), CharId(9))));
        assert_eq!(spec.predecessor, Some(TaskId(7)));
    }

    #[test]
    fn assignee_encoding() {
        assert_eq!(Assignee::User(UserId(5)).kind_str(), "user");
        assert_eq!(Assignee::Role(RoleId(2)).kind_str(), "role");
        assert_eq!(Assignee::Role(RoleId(2)).id(), 2);
    }
}
