//! The workflow engine: dynamic, in-document business processes.
//!
//! "We will define and run a dynamic workflow within a document for
//! ad-hoc cooperation on that document. … The workflow tasks can be
//! created, changed and routed dynamically, i.e. at run-time." Tasks are
//! rows bound to a document (optionally to a character range); routing is
//! a predecessor edge; every state change is an audited transaction.

use tendax_storage::{DataType, Predicate, Row, StorageError, TableDef, TableId, Value};
use tendax_text::{CharId, DocId, Permission, Result, RoleId, TextDb, TextError, UserId};

use crate::model::{Assignee, Task, TaskId, TaskLogEntry, TaskSpec, TaskState};

/// Table ids of the process schema.
#[derive(Debug, Clone, Copy)]
pub struct ProcessTables {
    pub tasks: TableId,
    pub task_log: TableId,
}

fn tasks_def() -> TableDef {
    TableDef::new("tasks")
        .column("doc", DataType::Id)
        .column("name", DataType::Text)
        .column("description", DataType::Text)
        .column("assignee_kind", DataType::Text)
        .column("assignee", DataType::Id)
        .column("created_by", DataType::Id)
        .column("created_at", DataType::Timestamp)
        .nullable_column("due", DataType::Timestamp)
        .column("state", DataType::Text)
        .nullable_column("from_char", DataType::Id)
        .nullable_column("to_char", DataType::Id)
        .nullable_column("predecessor", DataType::Id)
        .nullable_column("completed_by", DataType::Id)
        .nullable_column("completed_at", DataType::Timestamp)
        .index("tasks_by_doc", &["doc"])
        .index("tasks_by_assignee", &["assignee_kind", "assignee"])
}

fn task_log_def() -> TableDef {
    TableDef::new("task_log")
        .column("task", DataType::Id)
        .column("ts", DataType::Timestamp)
        .column("user", DataType::Id)
        .column("action", DataType::Text)
        .column("note", DataType::Text)
        .index("task_log_by_task", &["task"])
}

/// The in-document business-process engine.
#[derive(Debug, Clone)]
pub struct ProcessEngine {
    tdb: TextDb,
    t: ProcessTables,
}

impl ProcessEngine {
    /// Install (or adopt) the process schema next to the text schema.
    pub fn init(tdb: TextDb) -> Result<ProcessEngine> {
        let db = tdb.database();
        for def in [tasks_def(), task_log_def()] {
            match db.create_table(def) {
                Ok(_) | Err(StorageError::TableExists(_)) => {}
                Err(e) => return Err(e.into()),
            }
        }
        let t = ProcessTables {
            tasks: db.table_id("tasks")?,
            task_log: db.table_id("task_log")?,
        };
        Ok(ProcessEngine { tdb, t })
    }

    pub fn textdb(&self) -> &TextDb {
        &self.tdb
    }

    pub fn tables(&self) -> &ProcessTables {
        &self.t
    }

    // ------------------------------------------------------------ creation

    /// Define a task inside a document. Requires
    /// [`Permission::DefineProcess`] on the document.
    pub fn define_task(&self, doc: DocId, by: UserId, spec: TaskSpec) -> Result<TaskId> {
        self.tdb
            .check_permission(doc, by, Permission::DefineProcess)?;
        let mut txn = self.tdb.database().begin();
        let ts = self.tdb.now();
        let rid = txn.insert(
            self.t.tasks,
            Row::new(vec![
                doc.value(),
                Value::Text(spec.name.clone()),
                Value::Text(spec.description.clone()),
                Value::Text(spec.assignee.kind_str().to_owned()),
                Value::Id(spec.assignee.id()),
                by.value(),
                Value::Timestamp(ts),
                spec.due.map(Value::Timestamp).unwrap_or(Value::Null),
                Value::Text(TaskState::Pending.as_str().to_owned()),
                spec.range.map(|(f, _)| f.value()).unwrap_or(Value::Null),
                spec.range.map(|(_, t)| t.value()).unwrap_or(Value::Null),
                spec.predecessor
                    .map(|p| Value::Id(p.0))
                    .unwrap_or(Value::Null),
                Value::Null,
                Value::Null,
            ]),
        )?;
        let task = TaskId(rid.0);
        self.log(&mut txn, task, by, ts, "created", &spec.name)?;
        txn.commit()?;
        Ok(task)
    }

    /// Define a linear chain of tasks in one call: each task is routed
    /// behind the previous one (`specs[0]` is immediately actionable).
    /// Returns the task ids in order.
    pub fn define_chain(
        &self,
        doc: DocId,
        by: UserId,
        specs: Vec<TaskSpec>,
    ) -> Result<Vec<TaskId>> {
        let mut ids = Vec::with_capacity(specs.len());
        let mut prev: Option<TaskId> = None;
        for mut spec in specs {
            if spec.predecessor.is_none() {
                spec.predecessor = prev;
            }
            let id = self.define_task(doc, by, spec)?;
            prev = Some(id);
            ids.push(id);
        }
        Ok(ids)
    }

    // ------------------------------------------------------------- queries

    /// Load one task.
    pub fn task(&self, id: TaskId) -> Result<Task> {
        let txn = self.tdb.database().begin();
        let row = txn
            .get(self.t.tasks, tendax_storage::RowId(id.0))?
            .ok_or_else(|| TextError::ChainCorrupt(format!("missing task {id}")))?;
        Ok(decode_task(id, &row))
    }

    /// All tasks of a document, creation order.
    pub fn tasks_of_doc(&self, doc: DocId) -> Result<Vec<Task>> {
        let txn = self.tdb.database().begin();
        Ok(txn
            .index_lookup(self.t.tasks, "tasks_by_doc", &[doc.value()])?
            .into_iter()
            .map(|(rid, row)| decode_task(TaskId(rid.0), &row))
            .collect())
    }

    /// Whether a task is actionable now: pending, and its predecessor (if
    /// any) is done.
    pub fn is_actionable(&self, id: TaskId) -> Result<bool> {
        let task = self.task(id)?;
        if task.state != TaskState::Pending {
            return Ok(false);
        }
        match task.predecessor {
            None => Ok(true),
            Some(p) => Ok(self.task(p)?.state == TaskState::Done),
        }
    }

    /// The user's inbox: actionable tasks assigned to them directly or
    /// via one of their roles, oldest first.
    pub fn inbox(&self, user: UserId) -> Result<Vec<Task>> {
        let roles = self.tdb.roles_of(user)?;
        let txn = self.tdb.database().begin();
        let mut out = Vec::new();
        let mut candidates = txn.index_lookup(
            self.t.tasks,
            "tasks_by_assignee",
            &[Value::Text("user".into()), user.value()],
        )?;
        for role in &roles {
            candidates.extend(txn.index_lookup(
                self.t.tasks,
                "tasks_by_assignee",
                &[Value::Text("role".into()), Value::Id(role.0)],
            )?);
        }
        for (rid, row) in candidates {
            let task = decode_task(TaskId(rid.0), &row);
            if task.state == TaskState::Pending && self.pred_done(&txn, &task)? {
                out.push(task);
            }
        }
        out.sort_by_key(|t| (t.created_at, t.id));
        Ok(out)
    }

    fn pred_done(&self, txn: &tendax_storage::Transaction, task: &Task) -> Result<bool> {
        match task.predecessor {
            None => Ok(true),
            Some(p) => {
                let row = txn
                    .get(self.t.tasks, tendax_storage::RowId(p.0))?
                    .ok_or_else(|| TextError::ChainCorrupt(format!("missing task {p}")))?;
                Ok(row.get(8).and_then(|v| v.as_text()) == Some("done"))
            }
        }
    }

    /// Audit log of a task, oldest first.
    pub fn history(&self, id: TaskId) -> Result<Vec<TaskLogEntry>> {
        let txn = self.tdb.database().begin();
        let mut entries: Vec<TaskLogEntry> = txn
            .index_lookup(self.t.task_log, "task_log_by_task", &[Value::Id(id.0)])?
            .into_iter()
            .map(|(_, row)| TaskLogEntry {
                task: id,
                ts: row.get(1).and_then(|v| v.as_timestamp()).unwrap_or(0),
                user: row.get(2).map(UserId::from_value).unwrap_or(UserId::NONE),
                action: row
                    .get(3)
                    .and_then(|v| v.as_text())
                    .unwrap_or_default()
                    .to_owned(),
                note: row
                    .get(4)
                    .and_then(|v| v.as_text())
                    .unwrap_or_default()
                    .to_owned(),
            })
            .collect();
        entries.sort_by_key(|e| e.ts);
        Ok(entries)
    }

    // ---------------------------------------------------------- transitions

    /// Complete an actionable task. The caller must be the assignee (or
    /// hold the assigned role).
    pub fn complete(&self, id: TaskId, user: UserId, note: &str) -> Result<()> {
        self.transition(id, user, TaskState::Done, "completed", note, true)
    }

    /// Reject an actionable task.
    pub fn reject(&self, id: TaskId, user: UserId, note: &str) -> Result<()> {
        self.transition(id, user, TaskState::Rejected, "rejected", note, true)
    }

    /// Cancel a task. Only the task creator or someone with
    /// [`Permission::DefineProcess`] on the document may cancel.
    pub fn cancel(&self, id: TaskId, user: UserId, note: &str) -> Result<()> {
        let task = self.task(id)?;
        if task.created_by != user {
            self.tdb
                .check_permission(task.doc, user, Permission::DefineProcess)?;
        }
        self.transition(id, user, TaskState::Cancelled, "cancelled", note, false)
    }

    /// Re-route a task to a new assignee at run time. Allowed for the
    /// current assignee and for process definers.
    pub fn reassign(&self, id: TaskId, by: UserId, to: Assignee) -> Result<()> {
        let task = self.task(id)?;
        if task.state.is_terminal() {
            return Err(TextError::ChainCorrupt(format!(
                "task {id} is {} and cannot be re-routed",
                task.state.as_str()
            )));
        }
        if !self.user_is_assignee(by, task.assignee)? {
            self.tdb
                .check_permission(task.doc, by, Permission::DefineProcess)?;
        }
        let mut txn = self.tdb.database().begin();
        txn.set(
            self.t.tasks,
            tendax_storage::RowId(id.0),
            &[
                ("assignee_kind", Value::Text(to.kind_str().to_owned())),
                ("assignee", Value::Id(to.id())),
            ],
        )?;
        let ts = self.tdb.now();
        self.log(&mut txn, id, by, ts, "reassigned", to.kind_str())?;
        txn.commit()?;
        Ok(())
    }

    /// Change a task's routing (predecessor edge) at run time.
    pub fn set_predecessor(&self, id: TaskId, by: UserId, pred: Option<TaskId>) -> Result<()> {
        let task = self.task(id)?;
        self.tdb
            .check_permission(task.doc, by, Permission::DefineProcess)?;
        if let Some(p) = pred {
            // Reject cycles: walk the predecessor chain from `p`.
            let mut cur = Some(p);
            while let Some(c) = cur {
                if c == id {
                    return Err(TextError::ChainCorrupt(format!(
                        "routing cycle through {id}"
                    )));
                }
                cur = self.task(c)?.predecessor;
            }
        }
        let mut txn = self.tdb.database().begin();
        txn.set(
            self.t.tasks,
            tendax_storage::RowId(id.0),
            &[(
                "predecessor",
                pred.map(|p| Value::Id(p.0)).unwrap_or(Value::Null),
            )],
        )?;
        let ts = self.tdb.now();
        self.log(&mut txn, id, by, ts, "rerouted", "")?;
        txn.commit()?;
        Ok(())
    }

    fn transition(
        &self,
        id: TaskId,
        user: UserId,
        to: TaskState,
        action: &str,
        note: &str,
        must_be_assignee: bool,
    ) -> Result<()> {
        let task = self.task(id)?;
        if task.state.is_terminal() {
            return Err(TextError::ChainCorrupt(format!(
                "task {id} already {}",
                task.state.as_str()
            )));
        }
        if must_be_assignee {
            if !self.user_is_assignee(user, task.assignee)? {
                return Err(TextError::PermissionDenied {
                    user,
                    doc: task.doc,
                    perm: Permission::DefineProcess,
                });
            }
            if !self.is_actionable(id)? {
                return Err(TextError::ChainCorrupt(format!(
                    "task {id} is blocked by its predecessor"
                )));
            }
        }
        let mut txn = self.tdb.database().begin();
        let ts = self.tdb.now();
        let mut updates = vec![("state", Value::Text(to.as_str().to_owned()))];
        if to == TaskState::Done {
            updates.push(("completed_by", user.value()));
            updates.push(("completed_at", Value::Timestamp(ts)));
        }
        txn.set(self.t.tasks, tendax_storage::RowId(id.0), &updates)?;
        self.log(&mut txn, id, user, ts, action, note)?;
        txn.commit()?;
        Ok(())
    }

    fn user_is_assignee(&self, user: UserId, assignee: Assignee) -> Result<bool> {
        Ok(match assignee {
            Assignee::User(u) => u == user,
            Assignee::Role(r) => self.tdb.roles_of(user)?.contains(&r),
        })
    }

    fn log(
        &self,
        txn: &mut tendax_storage::Transaction,
        task: TaskId,
        user: UserId,
        ts: i64,
        action: &str,
        note: &str,
    ) -> Result<()> {
        txn.insert(
            self.t.task_log,
            Row::new(vec![
                Value::Id(task.0),
                Value::Timestamp(ts),
                user.value(),
                Value::Text(action.to_owned()),
                Value::Text(note.to_owned()),
            ]),
        )?;
        Ok(())
    }

    /// Pending tasks whose due timestamp has passed (dashboards,
    /// escalation). Sorted most-overdue first.
    pub fn overdue_tasks(&self, doc: DocId) -> Result<Vec<Task>> {
        let now = self.tdb.now();
        let mut out: Vec<Task> = self
            .tasks_of_doc(doc)?
            .into_iter()
            .filter(|t| t.state == TaskState::Pending && t.due.is_some_and(|d| d < now))
            .collect();
        out.sort_by_key(|t| t.due);
        Ok(out)
    }

    /// Tasks of a document in a given state (workflow dashboards).
    pub fn tasks_in_state(&self, doc: DocId, state: TaskState) -> Result<Vec<Task>> {
        let txn = self.tdb.database().begin();
        Ok(txn
            .scan(
                self.t.tasks,
                &Predicate::Eq("doc".into(), doc.value()).and(Predicate::Eq(
                    "state".into(),
                    Value::Text(state.as_str().to_owned()),
                )),
            )?
            .into_iter()
            .map(|(rid, row)| decode_task(TaskId(rid.0), &row))
            .collect())
    }
}

fn decode_task(id: TaskId, row: &Row) -> Task {
    let assignee_kind = row.get(3).and_then(|v| v.as_text()).unwrap_or("user");
    let assignee_id = row.get(4).and_then(|v| v.as_id()).unwrap_or(0);
    let assignee = if assignee_kind == "role" {
        Assignee::Role(RoleId(assignee_id))
    } else {
        Assignee::User(UserId(assignee_id))
    };
    let from = row.get(9).map(CharId::from_value).unwrap_or(CharId::NONE);
    let to = row.get(10).map(CharId::from_value).unwrap_or(CharId::NONE);
    Task {
        id,
        doc: row.get(0).map(DocId::from_value).unwrap_or(DocId::NONE),
        name: row
            .get(1)
            .and_then(|v| v.as_text())
            .unwrap_or_default()
            .to_owned(),
        description: row
            .get(2)
            .and_then(|v| v.as_text())
            .unwrap_or_default()
            .to_owned(),
        assignee,
        created_by: row.get(5).map(UserId::from_value).unwrap_or(UserId::NONE),
        created_at: row.get(6).and_then(|v| v.as_timestamp()).unwrap_or(0),
        due: row.get(7).and_then(|v| v.as_timestamp()),
        state: row
            .get(8)
            .and_then(|v| v.as_text())
            .and_then(TaskState::from_str)
            .unwrap_or(TaskState::Pending),
        range: if from.is_none() {
            None
        } else {
            Some((from, to))
        },
        predecessor: row
            .get(11)
            .and_then(|v| v.as_id())
            .filter(|x| *x != 0)
            .map(TaskId),
        completed_by: row
            .get(12)
            .and_then(|v| v.as_id())
            .filter(|x| *x != 0)
            .map(UserId),
        completed_at: row.get(13).and_then(|v| v.as_timestamp()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (ProcessEngine, UserId, UserId, DocId) {
        let tdb = TextDb::in_memory();
        let alice = tdb.create_user("alice").unwrap();
        let bob = tdb.create_user("bob").unwrap();
        let doc = tdb.create_document("contract", alice).unwrap();
        let engine = ProcessEngine::init(tdb).unwrap();
        (engine, alice, bob, doc)
    }

    #[test]
    fn define_and_complete_task() {
        let (engine, alice, bob, doc) = setup();
        let task = engine
            .define_task(
                doc,
                alice,
                TaskSpec::new("verify §3", Assignee::User(bob)).description("check the numbers"),
            )
            .unwrap();
        let t = engine.task(task).unwrap();
        assert_eq!(t.name, "verify §3");
        assert_eq!(t.state, TaskState::Pending);
        assert!(engine.is_actionable(task).unwrap());

        // Bob sees it in his inbox; Alice doesn't.
        assert_eq!(engine.inbox(bob).unwrap().len(), 1);
        assert!(engine.inbox(alice).unwrap().is_empty());

        engine.complete(task, bob, "numbers ok").unwrap();
        let t = engine.task(task).unwrap();
        assert_eq!(t.state, TaskState::Done);
        assert_eq!(t.completed_by, Some(bob));
        assert!(engine.inbox(bob).unwrap().is_empty());

        let history = engine.history(task).unwrap();
        assert_eq!(history.len(), 2);
        assert_eq!(history[0].action, "created");
        assert_eq!(history[1].action, "completed");
        assert_eq!(history[1].note, "numbers ok");
    }

    #[test]
    fn role_based_assignment() {
        let (engine, alice, bob, doc) = setup();
        let tdb = engine.textdb().clone();
        let translators = tdb.create_role("translators").unwrap();
        tdb.assign_role(bob, translators).unwrap();
        let task = engine
            .define_task(
                doc,
                alice,
                TaskSpec::new("translate", Assignee::Role(translators)),
            )
            .unwrap();
        assert_eq!(engine.inbox(bob).unwrap().len(), 1);
        engine.complete(task, bob, "done").unwrap();
        assert_eq!(engine.task(task).unwrap().completed_by, Some(bob));
    }

    #[test]
    fn only_assignee_may_complete() {
        let (engine, alice, bob, doc) = setup();
        let task = engine
            .define_task(doc, alice, TaskSpec::new("verify", Assignee::User(bob)))
            .unwrap();
        assert!(matches!(
            engine.complete(task, alice, ""),
            Err(TextError::PermissionDenied { .. })
        ));
        engine.complete(task, bob, "").unwrap();
        // Terminal tasks reject further transitions.
        assert!(engine.complete(task, bob, "").is_err());
    }

    #[test]
    fn routing_blocks_until_predecessor_done() {
        let (engine, alice, bob, doc) = setup();
        let first = engine
            .define_task(doc, alice, TaskSpec::new("draft", Assignee::User(alice)))
            .unwrap();
        let second = engine
            .define_task(
                doc,
                alice,
                TaskSpec::new("review", Assignee::User(bob)).after(first),
            )
            .unwrap();
        assert!(!engine.is_actionable(second).unwrap());
        assert!(engine.inbox(bob).unwrap().is_empty());
        assert!(engine.complete(second, bob, "too early").is_err());

        engine.complete(first, alice, "drafted").unwrap();
        assert!(engine.is_actionable(second).unwrap());
        assert_eq!(engine.inbox(bob).unwrap().len(), 1);
        engine.complete(second, bob, "reviewed").unwrap();
    }

    #[test]
    fn dynamic_reassignment_and_rerouting() {
        let (engine, alice, bob, doc) = setup();
        let tdb = engine.textdb().clone();
        let carol = tdb.create_user("carol").unwrap();
        let task = engine
            .define_task(doc, alice, TaskSpec::new("verify", Assignee::User(bob)))
            .unwrap();
        // Bob hands it to Carol at run time.
        engine.reassign(task, bob, Assignee::User(carol)).unwrap();
        assert!(engine.inbox(bob).unwrap().is_empty());
        assert_eq!(engine.inbox(carol).unwrap().len(), 1);
        // Alice (process definer) re-routes it behind a new task.
        let gate = engine
            .define_task(doc, alice, TaskSpec::new("prepare", Assignee::User(alice)))
            .unwrap();
        engine.set_predecessor(task, alice, Some(gate)).unwrap();
        assert!(engine.inbox(carol).unwrap().is_empty());
        engine.complete(gate, alice, "").unwrap();
        assert_eq!(engine.inbox(carol).unwrap().len(), 1);
    }

    #[test]
    fn define_chain_routes_sequentially() {
        let (engine, alice, bob, doc) = setup();
        let ids = engine
            .define_chain(
                doc,
                alice,
                vec![
                    TaskSpec::new("draft", Assignee::User(alice)),
                    TaskSpec::new("review", Assignee::User(bob)),
                    TaskSpec::new("publish", Assignee::User(alice)),
                ],
            )
            .unwrap();
        assert_eq!(ids.len(), 3);
        assert!(engine.is_actionable(ids[0]).unwrap());
        assert!(!engine.is_actionable(ids[1]).unwrap());
        assert!(!engine.is_actionable(ids[2]).unwrap());
        engine.complete(ids[0], alice, "").unwrap();
        assert!(engine.is_actionable(ids[1]).unwrap());
        engine.complete(ids[1], bob, "").unwrap();
        engine.complete(ids[2], alice, "").unwrap();
        assert_eq!(
            engine.tasks_in_state(doc, TaskState::Done).unwrap().len(),
            3
        );
    }

    #[test]
    fn routing_cycles_rejected() {
        let (engine, alice, _bob, doc) = setup();
        let a = engine
            .define_task(doc, alice, TaskSpec::new("a", Assignee::User(alice)))
            .unwrap();
        let b = engine
            .define_task(
                doc,
                alice,
                TaskSpec::new("b", Assignee::User(alice)).after(a),
            )
            .unwrap();
        assert!(engine.set_predecessor(a, alice, Some(b)).is_err());
        // Self-cycle too.
        assert!(engine.set_predecessor(a, alice, Some(a)).is_err());
    }

    #[test]
    fn cancel_requires_creator_or_definer() {
        let (engine, alice, bob, doc) = setup();
        let tdb = engine.textdb().clone();
        let task = engine
            .define_task(doc, alice, TaskSpec::new("t", Assignee::User(bob)))
            .unwrap();
        // A third user without DefineProcess cannot cancel once the
        // document's process rights are restricted.
        let carol = tdb.create_user("carol").unwrap();
        tdb.set_access(
            doc,
            alice,
            tendax_text::Principal::User(alice),
            Permission::DefineProcess,
            true,
        )
        .unwrap();
        assert!(engine.cancel(task, carol, "meddling").is_err());
        engine.cancel(task, alice, "obsolete").unwrap();
        assert_eq!(engine.task(task).unwrap().state, TaskState::Cancelled);
    }

    #[test]
    fn define_requires_permission() {
        let (engine, alice, bob, doc) = setup();
        let tdb = engine.textdb().clone();
        tdb.set_access(
            doc,
            alice,
            tendax_text::Principal::User(alice),
            Permission::DefineProcess,
            true,
        )
        .unwrap();
        assert!(matches!(
            engine.define_task(doc, bob, TaskSpec::new("x", Assignee::User(bob))),
            Err(TextError::PermissionDenied { .. })
        ));
    }

    #[test]
    fn dashboard_by_state() {
        let (engine, alice, bob, doc) = setup();
        let t1 = engine
            .define_task(doc, alice, TaskSpec::new("a", Assignee::User(bob)))
            .unwrap();
        let _t2 = engine
            .define_task(doc, alice, TaskSpec::new("b", Assignee::User(bob)))
            .unwrap();
        engine.complete(t1, bob, "").unwrap();
        assert_eq!(
            engine.tasks_in_state(doc, TaskState::Done).unwrap().len(),
            1
        );
        assert_eq!(
            engine
                .tasks_in_state(doc, TaskState::Pending)
                .unwrap()
                .len(),
            1
        );
        assert_eq!(engine.tasks_of_doc(doc).unwrap().len(), 2);
    }

    #[test]
    fn overdue_tasks_sorted_by_lateness() {
        let (engine, alice, bob, doc) = setup();
        let tdb = engine.textdb().clone();
        let past1 = tdb.now();
        let past2 = tdb.now();
        let t_late = engine
            .define_task(
                doc,
                alice,
                TaskSpec::new("very late", Assignee::User(bob)).due(past1),
            )
            .unwrap();
        let t_later = engine
            .define_task(
                doc,
                alice,
                TaskSpec::new("late", Assignee::User(bob)).due(past2),
            )
            .unwrap();
        let _future = engine
            .define_task(
                doc,
                alice,
                TaskSpec::new("future", Assignee::User(bob)).due(i64::MAX),
            )
            .unwrap();
        let _no_due = engine
            .define_task(doc, alice, TaskSpec::new("whenever", Assignee::User(bob)))
            .unwrap();
        let overdue = engine.overdue_tasks(doc).unwrap();
        assert_eq!(
            overdue.iter().map(|t| t.id).collect::<Vec<_>>(),
            vec![t_late, t_later]
        );
        // Completed tasks stop being overdue.
        engine.complete(t_late, bob, "").unwrap();
        assert_eq!(engine.overdue_tasks(doc).unwrap().len(), 1);
    }

    #[test]
    fn task_anchored_to_document_range() {
        let (engine, alice, bob, doc) = setup();
        let tdb = engine.textdb().clone();
        let mut h = tdb.open(doc, alice).unwrap();
        h.insert_text(0, "please translate this sentence").unwrap();
        let from = h.char_at(7).unwrap();
        let to = h.char_at(15).unwrap();
        let task = engine
            .define_task(
                doc,
                alice,
                TaskSpec::new("translate", Assignee::User(bob)).range(from, to),
            )
            .unwrap();
        let t = engine.task(task).unwrap();
        assert_eq!(t.range, Some((from, to)));
        // The anchored span is findable in the live document.
        let span = (h.position_of(from).unwrap(), h.position_of(to).unwrap());
        assert_eq!(span, (7, 15));
    }
}
