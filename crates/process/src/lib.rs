//! # tendax-process
//!
//! Dynamic, in-document business processes for the TeNDaX reproduction —
//! the demo's "Business process definitions and flow" item and the
//! companion paper "Dynamic Collaborative Business Processes within
//! Documents" (Hodel, Gall, Dittrich, ACM SIGDOC 2004).
//!
//! Workflow tasks ("translate §2", "verify the appendix") live inside
//! documents: each task is a database row optionally anchored to a
//! character range, assigned to a user or role, and routed through
//! predecessor edges. Tasks can be created, re-assigned and re-routed at
//! run time; every transition is an audited transaction.
//!
//! ## Quick example
//!
//! ```
//! use tendax_process::{Assignee, ProcessEngine, TaskSpec};
//! use tendax_text::TextDb;
//!
//! let tdb = TextDb::in_memory();
//! let alice = tdb.create_user("alice").unwrap();
//! let bob = tdb.create_user("bob").unwrap();
//! let doc = tdb.create_document("contract", alice).unwrap();
//!
//! let engine = ProcessEngine::init(tdb).unwrap();
//! let task = engine
//!     .define_task(doc, alice, TaskSpec::new("verify", Assignee::User(bob)))
//!     .unwrap();
//! assert_eq!(engine.inbox(bob).unwrap().len(), 1);
//! engine.complete(task, bob, "looks good").unwrap();
//! ```

pub mod engine;
pub mod model;

pub use engine::{ProcessEngine, ProcessTables};
pub use model::{Assignee, Task, TaskId, TaskLogEntry, TaskSpec, TaskState};
