//! Property tests for the workflow engine: a random script of task
//! operations against a simple model; lifecycle invariants must hold at
//! every step.

use proptest::prelude::*;
use tendax_process::{Assignee, ProcessEngine, TaskId, TaskSpec, TaskState};
use tendax_text::{DocId, TextDb, UserId};

#[derive(Debug, Clone)]
enum WfOp {
    Define {
        assignee: usize,
        after: Option<usize>,
    },
    Complete(usize),
    Reject(usize),
    Cancel(usize),
    Reassign {
        task: usize,
        to: usize,
    },
}

fn arb_op() -> impl Strategy<Value = WfOp> {
    prop_oneof![
        (any::<usize>(), proptest::option::of(any::<usize>()))
            .prop_map(|(assignee, after)| WfOp::Define { assignee, after }),
        any::<usize>().prop_map(WfOp::Complete),
        any::<usize>().prop_map(WfOp::Reject),
        any::<usize>().prop_map(WfOp::Cancel),
        (any::<usize>(), any::<usize>()).prop_map(|(task, to)| WfOp::Reassign { task, to }),
    ]
}

struct ModelTask {
    assignee: usize,
    state: TaskState,
    pred: Option<usize>,
}

struct World {
    engine: ProcessEngine,
    users: Vec<UserId>,
    doc: DocId,
    creator: UserId,
    ids: Vec<TaskId>,
    model: Vec<ModelTask>,
}

impl World {
    fn new(n_users: usize) -> World {
        let tdb = TextDb::in_memory();
        let creator = tdb.create_user("creator").unwrap();
        let users: Vec<UserId> = (0..n_users)
            .map(|i| tdb.create_user(&format!("u{i}")).unwrap())
            .collect();
        let doc = tdb.create_document("d", creator).unwrap();
        let engine = ProcessEngine::init(tdb).unwrap();
        World {
            engine,
            users,
            doc,
            creator,
            ids: Vec::new(),
            model: Vec::new(),
        }
    }

    fn actionable(&self, k: usize) -> bool {
        self.model[k].state == TaskState::Pending
            && self.model[k]
                .pred
                .is_none_or(|p| self.model[p].state == TaskState::Done)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn workflow_engine_matches_model(script in proptest::collection::vec(arb_op(), 1..40)) {
        let mut w = World::new(3);
        for op in script {
            match op {
                WfOp::Define { assignee, after } => {
                    let assignee = assignee % w.users.len();
                    let mut spec = TaskSpec::new(
                        format!("t{}", w.ids.len()),
                        Assignee::User(w.users[assignee]),
                    );
                    let pred = after.map(|a| a % (w.ids.len() + 1)).filter(|a| *a < w.ids.len());
                    if let Some(p) = pred {
                        spec = spec.after(w.ids[p]);
                    }
                    let id = w.engine.define_task(w.doc, w.creator, spec).unwrap();
                    w.ids.push(id);
                    w.model.push(ModelTask {
                        assignee,
                        state: TaskState::Pending,
                        pred,
                    });
                }
                WfOp::Complete(k) | WfOp::Reject(k) => {
                    if w.ids.is_empty() {
                        continue;
                    }
                    let k = k % w.ids.len();
                    let reject = matches!(op, WfOp::Reject(_));
                    let user = w.users[w.model[k].assignee];
                    let result = if reject {
                        w.engine.reject(w.ids[k], user, "")
                    } else {
                        w.engine.complete(w.ids[k], user, "")
                    };
                    if w.actionable(k) {
                        prop_assert!(result.is_ok(), "actionable transition refused");
                        w.model[k].state = if reject {
                            TaskState::Rejected
                        } else {
                            TaskState::Done
                        };
                    } else {
                        prop_assert!(result.is_err(), "blocked/terminal transition allowed");
                    }
                    // Wrong user must always be refused on pending tasks.
                    let wrong = w.users[(w.model[k].assignee + 1) % w.users.len()];
                    prop_assert!(w.engine.complete(w.ids[k], wrong, "").is_err());
                }
                WfOp::Cancel(k) => {
                    if w.ids.is_empty() {
                        continue;
                    }
                    let k = k % w.ids.len();
                    let result = w.engine.cancel(w.ids[k], w.creator, "");
                    if w.model[k].state == TaskState::Pending {
                        prop_assert!(result.is_ok());
                        w.model[k].state = TaskState::Cancelled;
                    } else {
                        prop_assert!(result.is_err());
                    }
                }
                WfOp::Reassign { task, to } => {
                    if w.ids.is_empty() {
                        continue;
                    }
                    let k = task % w.ids.len();
                    let to = to % w.users.len();
                    let result = w.engine.reassign(
                        w.ids[k],
                        w.creator, // creator always holds DefineProcess
                        Assignee::User(w.users[to]),
                    );
                    if w.model[k].state == TaskState::Pending {
                        prop_assert!(result.is_ok());
                        w.model[k].assignee = to;
                    } else {
                        prop_assert!(result.is_err(), "re-routing a terminal task allowed");
                    }
                }
            }

            // Invariants after every step.
            for (k, id) in w.ids.iter().enumerate() {
                let task = w.engine.task(*id).unwrap();
                prop_assert_eq!(task.state, w.model[k].state);
            }
            // Inboxes contain exactly the actionable pending tasks.
            for (u, user) in w.users.iter().enumerate() {
                let inbox: Vec<TaskId> =
                    w.engine.inbox(*user).unwrap().iter().map(|t| t.id).collect();
                let expected: Vec<TaskId> = w
                    .ids
                    .iter()
                    .enumerate()
                    .filter(|(k, _)| w.model[*k].assignee == u && w.actionable(*k))
                    .map(|(_, id)| *id)
                    .collect();
                prop_assert_eq!(inbox, expected);
            }
        }
    }
}
