//! A durable TeNDaX workspace: write-ahead logging, crash recovery,
//! checkpoint compaction, and templates.
//!
//! Demonstrates what "everything which is typed … is stored persistently"
//! means operationally: the workspace is closed without ceremony and
//! reopened from its log, including mid-edit.
//!
//! Run with: `cargo run --example durable_workspace`

use tendax_core::{DurabilityLevel, Options, Platform, Tendax};

fn main() -> tendax_core::Result<()> {
    let dir = std::env::temp_dir().join("tendax-durable-example");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("workspace.wal");
    let _ = std::fs::remove_file(&path);
    let options = Options {
        durability: DurabilityLevel::Buffered, // Fsync for power-loss safety
        ..Options::default()
    };

    // --- Session 1: set up the workspace and edit ------------------------
    {
        let tx = Tendax::open(&path, options.clone())?;
        let alice = tx.create_user("alice")?;
        tx.textdb().define_template(
            "weekly-report",
            alice,
            "Weekly Report\n\nHighlights:\n\nRisks:",
            &[
                ("heading1", 0, 13),
                ("heading2", 15, 11),
                ("heading2", 28, 6),
            ],
        )?;
        tx.textdb()
            .create_document_from_template("week-27", alice, "weekly-report")?;

        let session = tx.connect("alice", Platform::Linux)?;
        let mut doc = session.open("week-27")?;
        doc.type_text(doc.len(), "\n- shipped the storage engine")?;
        println!("session 1 wrote {} chars", doc.len());
        // No clean shutdown — the process "crashes" here.
    }

    // --- Session 2: recover, verify, checkpoint --------------------------
    {
        let tx = Tendax::open(&path, options.clone())?;
        let alice = tx.textdb().user_by_name("alice")?;
        let doc = tx.textdb().document_by_name("week-27")?;
        let h = tx.textdb().open(doc, alice)?;
        println!("recovered {} chars:", h.len());
        println!("{}", h.text());
        assert!(h.text().contains("shipped the storage engine"));
        assert_eq!(h.structures()?.len(), 3);

        let before = std::fs::metadata(&path).expect("wal meta").len();
        tx.textdb().database().checkpoint()?;
        let after = std::fs::metadata(&path).expect("wal meta").len();
        println!("checkpoint compacted the log: {before} -> {after} bytes");

        // Editing continues after the checkpoint.
        let session = tx.connect("alice", Platform::Linux)?;
        let mut d = session.open("week-27")?;
        d.type_text(d.len(), "\n- wrote the docs")?;
    }

    // --- Session 3: everything is still there ----------------------------
    {
        let tx = Tendax::open(&path, options)?;
        let alice = tx.textdb().user_by_name("alice")?;
        let doc = tx.textdb().document_by_name("week-27")?;
        let mut h = tx.textdb().open(doc, alice)?;
        assert!(h.text().ends_with("- wrote the docs"));
        // Undo works across restarts: the operation log is durable.
        h.undo()?;
        assert!(!h.text().contains("wrote the docs"));
        println!("undo across restart works; final text:\n{}", h.text());
        println!("engine stats: {:?}", tx.stats());
    }
    Ok(())
}
