//! The workspace management view: the report, activity timelines and
//! the co-authorship graph over a generated corpus.
//!
//! Run with: `cargo run --example workspace_report`

use tendax_core::{activity_timeline, collaboration_graph, Platform, Tendax};

fn main() -> tendax_core::Result<()> {
    let tx = Tendax::in_memory()?;
    let alice = tx.create_user("alice")?;
    let bob = tx.create_user("bob")?;
    let carol = tx.create_user("carol")?;

    // A small shared corpus.
    tx.create_document("spec", alice)?;
    tx.create_document("notes", bob)?;
    tx.create_document("faq", carol)?;
    let sa = tx.connect("alice", Platform::WindowsXp)?;
    let sb = tx.connect("bob", Platform::Linux)?;
    let sc = tx.connect("carol", Platform::MacOsX)?;

    let mut spec = sa.open("spec")?;
    spec.type_text(0, "The system stores text natively in the database. ")?;
    let mut spec_b = sb.open("spec")?;
    spec_b.type_text(0, "[reviewed] ")?;
    let mut notes = sb.open("notes")?;
    notes.type_text(0, "meeting notes about the spec ")?;
    let clip = spec.copy(11, 10)?;
    notes.paste(notes.len(), &clip)?;
    let mut faq = sc.open("faq")?;
    faq.type_text(0, "Q: where does text live? A: in the database.")?;
    faq.delete(0, 3)?;

    // --- The report -------------------------------------------------------
    let report = tx.report()?;
    print!("{}", report.render());

    // --- Activity timeline of the busiest document ------------------------
    let busiest = tx.textdb().document_by_name(&report.documents[0].name)?;
    let timeline = activity_timeline(tx.textdb(), busiest, 8)?;
    println!(
        "\nactivity timeline of '{}': {timeline:?}",
        report.documents[0].name
    );

    // --- Who collaborates with whom ---------------------------------------
    println!("co-authorship graph:");
    for (a, b, shared) in collaboration_graph(tx.textdb())? {
        let an = tx.textdb().user_name(a)?;
        let bn = tx.textdb().user_name(b)?;
        println!("  {an} <-> {bn}: {shared} shared document(s)");
    }

    // --- Editor-level stats -----------------------------------------------
    println!("\nalice's editor stats on 'spec': {:?}", spec.stats());
    Ok(())
}
