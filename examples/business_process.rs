//! Dynamic business processes inside a document.
//!
//! Reproduces the demo's workflow item: define tasks bound to parts of a
//! document, assign them to users and roles, and re-route them at run
//! time while the document is being edited.
//!
//! Run with: `cargo run --example business_process`

use tendax_core::{Assignee, Platform, TaskSpec, TaskState, Tendax};

fn main() -> tendax_core::Result<()> {
    let tx = Tendax::in_memory()?;
    let alice = tx.create_user("alice")?;
    let bob = tx.create_user("bob")?;
    let carol = tx.create_user("carol")?;
    let translators = tx.textdb().create_role("translators")?;
    tx.textdb().assign_role(carol, translators)?;

    let doc = tx.create_document("contract", alice)?;
    let session = tx.connect("alice", Platform::WindowsXp)?;
    let mut editor = session.open("contract")?;
    editor.type_text(0, "§1 Scope. §2 Liability. §3 Term.")?;

    // Anchor a task to "§2 Liability." — the anchor survives edits.
    let from = editor.handle().char_at(10).expect("char exists");
    let to = editor.handle().char_at(22).expect("char exists");

    let engine = tx.process();
    let draft = engine.define_task(
        doc,
        alice,
        TaskSpec::new("draft §2", Assignee::User(bob)).description("write the liability clause"),
    )?;
    let translate = engine.define_task(
        doc,
        alice,
        TaskSpec::new("translate §2", Assignee::Role(translators))
            .range(from, to)
            .after(draft),
    )?;

    println!("bob's inbox:   {:?}", names(&engine.inbox(bob)?));
    println!("carol's inbox: {:?}", names(&engine.inbox(carol)?)); // blocked by routing

    // Bob completes his task; the translation task becomes actionable.
    engine.complete(draft, bob, "clause drafted")?;
    println!(
        "after draft done, carol's inbox: {:?}",
        names(&engine.inbox(carol)?)
    );

    // Meanwhile the document changes — the task's anchored span moves.
    editor.type_text(0, ">>> ")?;
    let task = engine.task(translate)?;
    let (f, t) = task.range.expect("anchored");
    let span = (
        editor.handle().position_of(f),
        editor.handle().position_of(t),
    );
    println!(
        "task '{}' now anchored at visible span {:?}",
        task.name, span
    );

    // Dynamic re-routing at run time: carol hands the task to bob.
    engine.reassign(translate, carol, Assignee::User(bob))?;
    engine.complete(translate, bob, "übersetzt")?;

    for t in engine.tasks_of_doc(doc)? {
        println!(
            "task '{}': {:?} (completed by {:?})",
            t.name,
            t.state,
            t.completed_by.map(|u| u.0)
        );
        for e in engine.history(t.id)? {
            println!("    t={} user#{} {} {}", e.ts, e.user.0, e.action, e.note);
        }
    }
    assert_eq!(engine.tasks_in_state(doc, TaskState::Done)?.len(), 2);
    Ok(())
}

fn names(tasks: &[tendax_core::Task]) -> Vec<&str> {
    tasks.iter().map(|t| t.name.as_str()).collect()
}
