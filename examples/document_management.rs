//! Metadata-powered document management: dynamic folders, data lineage,
//! search & ranking, visual and text mining.
//!
//! Builds a small corpus with copy-paste provenance, then exercises all
//! four metadata services of the demo (§3 of the paper).
//!
//! Run with: `cargo run --example document_management`

use tendax_core::{
    char_provenance, top_terms, FolderRule, Platform, RankBy, SearchFilter, SearchQuery, Tendax,
};

fn main() -> tendax_core::Result<()> {
    let tx = Tendax::in_memory()?;
    let alice = tx.create_user("alice")?;
    let bob = tx.create_user("bob")?;

    // --- Build a corpus with provenance ---------------------------------
    let report = tx.create_document("annual-report", alice)?;
    let _press = tx.create_document("press-release", alice)?;
    let wiki = tx.create_document("team-wiki", bob)?;

    let sa = tx.connect("alice", Platform::WindowsXp)?;
    let mut ed_report = sa.open("annual-report")?;
    ed_report.type_text(0, "Revenue grew twelve percent this fiscal year.")?;

    let mut ed_press = sa.open("press-release")?;
    ed_press.type_text(0, "PRESS: ")?;
    let clip = ed_report.copy(0, 27)?; // "Revenue grew twelve percent"
    ed_press.paste(7, &clip)?;
    ed_press.paste_external(
        ed_press.len(),
        " (source: newswire)",
        "https://newswire.example",
    )?;

    let sb = tx.connect("bob", Platform::Linux)?;
    let mut ed_wiki = sb.open("team-wiki")?;
    let clip2 = ed_press.copy(7, 12)?;
    ed_wiki.type_text(0, "From the release: ")?;
    ed_wiki.paste(18, &clip2)?;

    // --- Dynamic folders --------------------------------------------------
    let folders = tx.folders();
    let f = folders.create_folder(
        "read-by-bob",
        bob,
        FolderRule::ReadBy {
            user: bob.0,
            since: 0,
        },
    )?;
    let mut watch = folders.watch(f)?;
    println!("folder 'read-by-bob': {:?}", watch.contents());
    let _ = tx.textdb().open(report, bob)?; // bob reads the report
    let changes = watch.refresh()?;
    println!("folder changed within seconds: {changes:?}");

    // --- Data lineage (Figure 1) ------------------------------------------
    let lineage = tx.lineage()?;
    print!("{}", lineage.render_ascii());
    let hops = {
        let h = tx.textdb().open(wiki, bob)?;
        let id = h.char_at(18).expect("pasted char");
        char_provenance(tx.textdb(), wiki, id)?
    };
    println!("character provenance chain:");
    for hop in &hops {
        println!("  {} (char #{})", hop.doc_name, hop.char.0);
    }
    assert_eq!(hops.last().unwrap().doc_name, "annual-report");

    // --- Search & ranking ---------------------------------------------------
    let search = tx.search()?;
    let hits = search.search(&SearchQuery::terms("revenue"))?;
    println!("search 'revenue' by relevance:");
    for h in &hits {
        println!("  {:<16} score {:.4}", h.name, h.score);
    }
    let cited = search.search(&SearchQuery::terms("").rank_by(RankBy::MostCited))?;
    println!(
        "most cited: {} ({} incoming pastes)",
        cited[0].name, cited[0].score
    );
    let by_bob = search.search(&SearchQuery::terms("").filter(SearchFilter::ReadBy(bob)))?;
    println!(
        "read by bob: {:?}",
        by_bob.iter().map(|h| &h.name).collect::<Vec<_>>()
    );

    // --- Visual & text mining (Figure 2) -------------------------------------
    let space = tx.document_space(2)?;
    print!("{}", space.render_ascii(48, 14));
    for p in &space.points {
        println!(
            "  {:<16} -> ({:>6.2}, {:>6.2}) cluster {}",
            p.name, p.x, p.y, p.cluster
        );
    }
    let terms = top_terms(tx.textdb(), report, 3)?;
    println!("characteristic terms of annual-report: {terms:?}");
    Ok(())
}
