//! The word-processing "LAN-party" over real TCP.
//!
//! Same story as `lan_party.rs`, but the editors are `tendax-net`
//! clients on real sockets: a `NetServer` multiplexes the connections
//! over one `CollabServer`, committed events fan out through bounded
//! per-connection queues, and each client converges a local mirror of
//! the document from the snapshot + event stream.
//!
//! Three ways to run it:
//!
//! * `cargo run --example collab_tcp` — self-contained demo: server and
//!   three concurrent clients in one process over loopback;
//! * `cargo run --example collab_tcp -- server 127.0.0.1:7001` — serve a
//!   fresh in-memory database (users alice/bob/carol, document "party");
//! * `cargo run --example collab_tcp -- client 127.0.0.1:7001 alice` —
//!   connect, type a line, and print the converged text.

use std::time::Duration;

use tendax_collab::CollabServer;
use tendax_net::{NetClient, NetConfig, NetServer};
use tendax_text::TextDb;

const USERS: [&str; 3] = ["alice", "bob", "carol"];
const DOC: &str = "party";

fn serve(addr: &str) -> NetServer {
    let tdb = TextDb::in_memory();
    let mut creator = None;
    for u in USERS {
        let id = tdb.create_user(u).expect("create user");
        creator.get_or_insert(id);
    }
    tdb.create_document(DOC, creator.unwrap())
        .expect("create doc");
    let collab = CollabServer::new(tdb);
    NetServer::bind(addr, collab, NetConfig::default()).expect("bind")
}

fn run_client(addr: &str, user: &str) {
    let c = NetClient::connect(addr, user).expect("connect");
    let doc = c.subscribe(DOC).expect("subscribe");
    let line = format!("<{user} was here> ");
    let mut last_ts = 0;
    for i in 0..5 {
        // Positions are advisory: the server clamps them against the
        // freshest state, so racing remote edits is safe.
        let pos = (i * line.len()) % (c.text(doc).map_or(0, |t| t.chars().count()) + 1);
        let (_, ts) = c.insert(doc, pos, &line).expect("insert");
        last_ts = ts;
    }
    c.awareness(doc, Some(0), None).expect("awareness");
    assert!(
        c.wait_synced(doc, last_ts, Duration::from_secs(10)),
        "mirror did not converge"
    );
    println!(
        "[{user}] mirror after own edits: {} chars, {} events applied",
        c.text(doc).map_or(0, |t| t.chars().count()),
        c.mirror_status(doc).map_or(0, |(_, _, _, applied)| applied),
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("server") => {
            let addr = args.get(1).map_or("127.0.0.1:7001", String::as_str);
            let server = serve(addr);
            println!(
                "serving {DOC:?} on {} (users: {USERS:?}); Ctrl-C to stop",
                server.local_addr()
            );
            loop {
                std::thread::sleep(Duration::from_secs(1));
            }
        }
        Some("client") => {
            let addr = args.get(1).map_or("127.0.0.1:7001", String::as_str);
            let user = args.get(2).map_or("alice", String::as_str);
            run_client(addr, user);
        }
        _ => {
            // Self-contained demo: one server, three concurrent clients.
            let server = serve("127.0.0.1:0");
            let addr = server.local_addr().to_string();
            println!("demo server on {addr}");
            let threads: Vec<_> = USERS
                .iter()
                .map(|user| {
                    let addr = addr.clone();
                    std::thread::spawn(move || run_client(&addr, user))
                })
                .collect();
            for t in threads {
                t.join().expect("client thread panicked");
            }

            // Every mirror converged; verify byte-identical text.
            let clients: Vec<NetClient> = USERS
                .iter()
                .map(|u| NetClient::connect(&addr, u).expect("connect"))
                .collect();
            let mut texts = Vec::new();
            let mut frontier = 0;
            for c in &clients {
                let doc = c.subscribe(DOC).expect("subscribe");
                frontier = frontier.max(c.synced_ts(doc).unwrap_or(0));
                assert!(c.wait_synced(doc, frontier, Duration::from_secs(10)));
                texts.push(c.text(doc).expect("text"));
            }
            assert!(
                texts.windows(2).all(|w| w[0] == w[1]),
                "clients diverged: {texts:?}"
            );
            println!(
                "converged text ({} chars): {}",
                texts[0].chars().count(),
                texts[0]
            );
            println!("server stats: {:?}", server.stats());
        }
    }
}
