//! The word-processing "LAN-party": the EDBT 2006 demo, headless.
//!
//! Editors on three platforms edit one document concurrently (real
//! threads), apply layout, set access rights, and use local & global
//! undo — all as database transactions, converging through the broadcast
//! bus.
//!
//! Run with: `cargo run --example lan_party`

use std::time::Duration;

use tendax_core::{Permission, Platform, Principal, Tendax};

fn main() -> tendax_core::Result<()> {
    let tx = Tendax::in_memory()?;
    let alice = tx.create_user("alice")?;
    tx.create_user("bob")?;
    tx.create_user("carol")?;
    tx.create_document("party", alice)?;

    // --- Concurrent editing from three "machines" ---------------------
    let mut threads = Vec::new();
    for (name, platform) in [
        ("alice", Platform::WindowsXp),
        ("bob", Platform::Linux),
        ("carol", Platform::MacOsX),
    ] {
        let tx = tx.clone();
        threads.push(std::thread::spawn(move || -> tendax_core::Result<()> {
            let session = tx.connect(name, platform.clone())?;
            let mut doc = session.open("party")?;
            for i in 0..10 {
                doc.sync();
                let pos = (i * 7 + name.len()) % (doc.len() + 1);
                doc.type_text(pos, &name[..1].to_uppercase())?;
            }
            println!("[{platform}] {name} finished typing");
            Ok(())
        }));
    }
    for t in threads {
        t.join().expect("editor thread panicked")?;
    }

    let session = tx.connect("alice", Platform::WindowsXp)?;
    let mut doc = session.open("party")?;
    doc.sync_timeout(Duration::from_millis(50));
    println!("converged text ({} chars): {}", doc.len(), doc.text());
    assert_eq!(doc.len(), 30);

    // --- Collaborative layout ------------------------------------------
    let heading = tx.textdb().define_style("heading", "bold;size=18", alice)?;
    doc.apply_style(0, 5, heading)?;
    println!("style runs: {:?}", doc.handle().style_runs().len());

    // --- Awareness ------------------------------------------------------
    for p in tx.server().who_is_online() {
        println!(
            "online: {} on {} (cursor {:?})",
            p.user_name, p.platform, p.cursor
        );
    }

    // --- Access rights ---------------------------------------------------
    tx.textdb().set_access(
        doc.doc(),
        alice,
        Principal::User(alice),
        Permission::Write,
        true,
    )?;
    let sb = tx.connect("bob", Platform::Linux)?;
    let mut bob_doc = sb.open("party")?;
    match bob_doc.type_text(0, "blocked") {
        Err(e) => println!("bob now blocked as expected: {e}"),
        Ok(_) => unreachable!("write should be denied"),
    }

    // --- Local vs global undo -------------------------------------------
    doc.undo()?; // alice undoes her style op? No: her last edit op (style)
    println!(
        "after alice's local undo, style runs: {:?}",
        doc.handle().style_runs().len()
    );
    doc.global_undo()?; // newest edit by anyone
    println!("after global undo ({} chars): {}", doc.len(), doc.text());
    Ok(())
}
