//! Quickstart: the TeNDaX editing model in two minutes.
//!
//! Creates a document, types into it, inspects per-character metadata,
//! uses undo/redo, and shows that every edit was an ACID transaction in
//! the underlying database.
//!
//! Run with: `cargo run --example quickstart`

use tendax_core::{Platform, Tendax};

fn main() -> tendax_core::Result<()> {
    // An in-memory TeNDaX instance (use `Tendax::open` for a durable one).
    let tx = Tendax::in_memory()?;
    let alice = tx.create_user("alice")?;
    let doc = tx.create_document("quickstart", alice)?;

    // Connect an editor session and open the document.
    let session = tx.connect("alice", Platform::Linux)?;
    let mut editor = session.open("quickstart")?;

    // Every call below is one or more database transactions.
    editor.type_text(0, "Hello, TeNDaX!")?;
    editor.type_text(14, " Text lives in the database.")?;
    println!("text: {}", editor.text());

    // Character-level metadata is gathered automatically.
    let meta = editor.handle().char_meta(0).expect("char 0 exists");
    println!(
        "char 0: {:?} authored by user#{} at t={} (provenance: {:?})",
        meta.ch, meta.author.0, meta.created_at, meta.provenance
    );

    // Undo is a new transaction that tombstones the inserted characters.
    editor.undo()?;
    println!("after undo:  {}", editor.text());
    editor.redo()?;
    println!("after redo:  {}", editor.text());

    // Deletions keep tombstones: history is never lost.
    editor.delete(0, 7)?;
    println!("after delete: {}", editor.text());
    let stats = tx.textdb().doc_stats(doc)?;
    println!(
        "visible chars: {}, stored character tuples: {}, logged ops: {}",
        stats.size, stats.tuples, stats.ops
    );

    // The storage engine underneath counted every commit.
    let s = tx.stats();
    println!(
        "engine: {} commits, {} conflicts, {} tables",
        s.commits, s.conflicts, s.tables
    );
    Ok(())
}
