//! An interactive TeNDaX shell — a minimal "editor" driving the whole
//! system from the command line, the closest headless analogue to the
//! demo's GUI editors.
//!
//! Run interactively:   `cargo run --example tendax_shell`
//! Or script it:        `echo "help" | cargo run --example tendax_shell`
//!
//! Commands (one per line):
//! ```text
//! user <name>                 create a user
//! as <name>                   switch the active user/session
//! doc <name>                  create a document (active user is creator)
//! open <name>                 open a document in the active session
//! type <pos> <text…>          insert text
//! del <pos> <len>             delete a range
//! show                        print the open document
//! undo | redo | gundo | gredo local/global undo & redo
//! style <name> <attrs>        define a style
//! apply <pos> <len> <style>   apply a style
//! note <pos> <len> <text…>    attach a note
//! meta <pos>                  character metadata at a position
//! task <doc> <assignee> <nm>  define a workflow task
//! inbox                       active user's task inbox
//! done <task-id> <note…>      complete a task
//! folders                     evaluate a docs-I-read folder
//! search <terms…>             content search
//! lineage                     render the lineage graph
//! mine                        render the document space
//! who                         who is online
//! help | quit
//! ```

use std::collections::HashMap;
use std::io::BufRead;

use tendax_core::{Assignee, FolderRule, Platform, SearchQuery, StyleId, TaskId, TaskSpec, Tendax};

struct Shell {
    tx: Tendax,
    sessions: HashMap<String, tendax_core::EditorSession>,
    active: Option<String>,
    open_doc: Option<tendax_core::EditorDoc>,
}

impl Shell {
    fn new() -> Self {
        Shell {
            tx: Tendax::in_memory().expect("in-memory instance"),
            sessions: HashMap::new(),
            active: None,
            open_doc: None,
        }
    }

    fn run_line(&mut self, line: &str) -> Result<String, String> {
        let mut parts = line.split_whitespace();
        let cmd = parts.next().unwrap_or("");
        let rest: Vec<&str> = parts.collect();
        let e = |err: tendax_core::TextError| err.to_string();
        match cmd {
            "" | "#" => Ok(String::new()),
            "help" => Ok("commands: user as doc open type del show undo redo gundo gredo \
                          style apply note meta task inbox done folders search lineage mine report history who quit"
                .into()),
            "user" => {
                let name = rest.first().ok_or("usage: user <name>")?;
                self.tx.create_user(name).map_err(e)?;
                let session = self
                    .tx
                    .connect(name, Platform::Other("shell".into()))
                    .map_err(e)?;
                self.sessions.insert(name.to_string(), session);
                self.active = Some(name.to_string());
                Ok(format!("user {name} created and active"))
            }
            "as" => {
                let name = rest.first().ok_or("usage: as <name>")?;
                if !self.sessions.contains_key(*name) {
                    let session = self
                        .tx
                        .connect(name, Platform::Other("shell".into()))
                        .map_err(e)?;
                    self.sessions.insert(name.to_string(), session);
                }
                self.active = Some(name.to_string());
                self.open_doc = None;
                Ok(format!("active user: {name}"))
            }
            "doc" => {
                let name = rest.first().ok_or("usage: doc <name>")?;
                let user = self.active_user()?;
                self.tx.create_document(name, user).map_err(e)?;
                Ok(format!("document {name} created"))
            }
            "open" => {
                let name = rest.first().ok_or("usage: open <name>")?;
                let session = self.active_session()?;
                self.open_doc = Some(session.open(name).map_err(e)?);
                Ok(format!("opened {name}"))
            }
            "type" => {
                let pos: usize = rest
                    .first()
                    .and_then(|p| p.parse().ok())
                    .ok_or("usage: type <pos> <text>")?;
                let text = rest[1..].join(" ");
                self.doc()?.type_text(pos, &text).map_err(e)?;
                Ok(self.doc()?.text())
            }
            "del" => {
                let pos: usize = rest
                    .first()
                    .and_then(|p| p.parse().ok())
                    .ok_or("usage: del <pos> <len>")?;
                let len: usize = rest
                    .get(1)
                    .and_then(|p| p.parse().ok())
                    .ok_or("usage: del <pos> <len>")?;
                self.doc()?.delete(pos, len).map_err(e)?;
                Ok(self.doc()?.text())
            }
            "show" => {
                self.doc()?.sync();
                Ok(self.doc()?.text())
            }
            "undo" => {
                self.doc()?.undo().map_err(e)?;
                Ok(self.doc()?.text())
            }
            "redo" => {
                self.doc()?.redo().map_err(e)?;
                Ok(self.doc()?.text())
            }
            "gundo" => {
                self.doc()?.global_undo().map_err(e)?;
                Ok(self.doc()?.text())
            }
            "gredo" => {
                self.doc()?.global_redo().map_err(e)?;
                Ok(self.doc()?.text())
            }
            "style" => {
                let name = rest.first().ok_or("usage: style <name> <attrs>")?;
                let attrs = rest.get(1).copied().unwrap_or("");
                let user = self.active_user()?;
                self.tx.textdb().define_style(name, attrs, user).map_err(e)?;
                Ok(format!("style {name} defined"))
            }
            "apply" => {
                let pos: usize = rest
                    .first()
                    .and_then(|p| p.parse().ok())
                    .ok_or("usage: apply <pos> <len> <style>")?;
                let len: usize = rest
                    .get(1)
                    .and_then(|p| p.parse().ok())
                    .ok_or("usage: apply <pos> <len> <style>")?;
                let style_name = rest.get(2).ok_or("usage: apply <pos> <len> <style>")?;
                let style: StyleId = self.tx.textdb().style_by_name(style_name).map_err(e)?;
                self.doc()?.apply_style(pos, len, style).map_err(e)?;
                Ok(format!("styled {len} chars at {pos}"))
            }
            "note" => {
                let pos: usize = rest
                    .first()
                    .and_then(|p| p.parse().ok())
                    .ok_or("usage: note <pos> <len> <text>")?;
                let len: usize = rest
                    .get(1)
                    .and_then(|p| p.parse().ok())
                    .ok_or("usage: note <pos> <len> <text>")?;
                let text = rest[2..].join(" ");
                let doc = self.doc()?;
                let (id, _) = doc
                    .with_handle("note", |h| {
                        let id = h.add_note(pos, len, &text)?;
                        Ok((
                            id,
                            tendax_core::EditReceipt {
                                op: tendax_core::OpId::NONE,
                                commit_ts: 0,
                                effects: vec![],
                            },
                        ))
                    })
                    .map_err(e)?;
                Ok(format!("note {id:?} attached"))
            }
            "meta" => {
                let pos: usize = rest
                    .first()
                    .and_then(|p| p.parse().ok())
                    .ok_or("usage: meta <pos>")?;
                match self.doc()?.handle().char_meta(pos) {
                    Some(m) => Ok(format!(
                        "{:?} author#{} t={} v={} provenance={:?}",
                        m.ch, m.author.0, m.created_at, m.version, m.provenance
                    )),
                    None => Err("no character at that position".into()),
                }
            }
            "task" => {
                let doc_name = rest.first().ok_or("usage: task <doc> <assignee> <name>")?;
                let assignee = rest.get(1).ok_or("usage: task <doc> <assignee> <name>")?;
                let task_name = rest[2..].join(" ");
                let by = self.active_user()?;
                let doc = self.tx.textdb().document_by_name(doc_name).map_err(e)?;
                let assignee = self.tx.textdb().user_by_name(assignee).map_err(e)?;
                let id = self
                    .tx
                    .process()
                    .define_task(doc, by, TaskSpec::new(task_name, Assignee::User(assignee)))
                    .map_err(e)?;
                Ok(format!("task {id} defined"))
            }
            "inbox" => {
                let user = self.active_user()?;
                let tasks = self.tx.process().inbox(user).map_err(e)?;
                Ok(tasks
                    .iter()
                    .map(|t| format!("#{} {} [{}]", t.id.0, t.name, t.state.as_str()))
                    .collect::<Vec<_>>()
                    .join("\n"))
            }
            "done" => {
                let id: u64 = rest
                    .first()
                    .and_then(|p| p.parse().ok())
                    .ok_or("usage: done <task-id> <note>")?;
                let note = rest[1..].join(" ");
                let user = self.active_user()?;
                self.tx
                    .process()
                    .complete(TaskId(id), user, &note)
                    .map_err(e)?;
                Ok(format!("task #{id} completed"))
            }
            "folders" => {
                let user = self.active_user()?;
                let docs = self
                    .tx
                    .folders()
                    .evaluate_rule(&FolderRule::ReadBy { user: user.0, since: 0 })
                    .map_err(e)?;
                let names: Vec<String> = docs
                    .iter()
                    .filter_map(|d| self.tx.textdb().document_info(*d).ok().map(|i| i.name))
                    .collect();
                Ok(format!("documents you have read: {names:?}"))
            }
            "search" => {
                let q = rest.join(" ");
                let hits = self
                    .tx
                    .search()
                    .map_err(e)?
                    .search(&SearchQuery::terms(&q))
                    .map_err(e)?;
                Ok(hits
                    .iter()
                    .map(|h| format!("{} (score {:.3})", h.name, h.score))
                    .collect::<Vec<_>>()
                    .join("\n"))
            }
            "lineage" => Ok(self.tx.lineage().map_err(e)?.render_ascii()),
            "report" => Ok(self.tx.report().map_err(e)?.render()),
            "history" => {
                let n: usize = rest
                    .first()
                    .and_then(|p| p.parse().ok())
                    .unwrap_or(10);
                let doc = self.doc()?;
                doc.handle().history_feed(n).map_err(e)
            }
            "mine" => Ok(self
                .tx
                .document_space(3)
                .map_err(e)?
                .render_ascii(48, 12)),
            "who" => Ok(self
                .tx
                .server()
                .who_is_online()
                .iter()
                .map(|p| format!("{} on {} (cursor {:?})", p.user_name, p.platform, p.cursor))
                .collect::<Vec<_>>()
                .join("\n")),
            other => Err(format!("unknown command `{other}` (try help)")),
        }
    }

    fn active_user(&self) -> Result<tendax_core::UserId, String> {
        let name = self
            .active
            .as_ref()
            .ok_or("no active user (use: user <name>)")?;
        self.tx
            .textdb()
            .user_by_name(name)
            .map_err(|e| e.to_string())
    }

    fn active_session(&self) -> Result<&tendax_core::EditorSession, String> {
        let name = self
            .active
            .as_ref()
            .ok_or("no active user (use: user <name>)")?;
        self.sessions.get(name).ok_or_else(|| "no session".into())
    }

    fn doc(&mut self) -> Result<&mut tendax_core::EditorDoc, String> {
        self.open_doc
            .as_mut()
            .ok_or_else(|| "no open document (use: open <name>)".into())
    }
}

fn main() {
    let mut shell = Shell::new();
    println!("TeNDaX shell — `help` for commands, `quit` to exit");
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line.expect("stdin line");
        let trimmed = line.trim();
        if trimmed == "quit" || trimmed == "exit" {
            break;
        }
        match shell.run_line(trimmed) {
            Ok(out) if out.is_empty() => {}
            Ok(out) => println!("{out}"),
            Err(err) => println!("error: {err}"),
        }
    }
}
